package exec

import (
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// VecEvaluator is a compiled scalar expression over a whole batch. The
// returned vector has the batch's physical length and is meaningful only at
// the batch's live positions; it may be an internal buffer owned by the
// evaluator (valid until its next invocation) or a column vector of the
// input batch, so callers must not mutate it.
//
// A VecEvaluator instance reuses its scratch buffers across batches and is
// therefore NOT safe for concurrent use. Plans store VecFactory values and
// instantiate fresh evaluators per execution (in OpenBatch), which is what
// lets one compiled plan — e.g. out of the query service's shared plan
// cache — execute concurrently in many sessions.
type VecEvaluator func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error)

// VecFactory instantiates a per-execution VecEvaluator. Factories are
// stateless and safe to share; every execution of a plan calls the factory
// once and owns the resulting evaluator (and its scratch buffers).
type VecFactory func() VecEvaluator

// stateless wraps an evaluator with no per-execution state (no scratch
// buffers) as a factory returning the shared instance.
func stateless(ev VecEvaluator) VecFactory {
	return func() VecEvaluator { return ev }
}

// Instantiate materializes one evaluator per factory.
func Instantiate(fs []VecFactory) []VecEvaluator {
	out := make([]VecEvaluator, len(fs))
	for i, f := range fs {
		out[i] = f()
	}
	return out
}

// vecBuf sizes a reusable result buffer to the batch's physical length.
func vecBuf(buf []sqltypes.Value, n int) []sqltypes.Value {
	if cap(buf) < n {
		return make([]sqltypes.Value, n)
	}
	return buf[:n]
}

// cmpAccepts maps a comparison operator to its outcome table: which
// three-way compare results (-1/0/1, offset by +1) satisfy the operator.
// Hoisting this out of the per-row loop removes the operator dispatch the
// generic sqltypes.Cmp performs per call.
func cmpAccepts(op sqltypes.CmpOp) ([3]bool, bool) {
	switch op {
	case sqltypes.CmpEQ:
		return [3]bool{false, true, false}, true
	case sqltypes.CmpNE:
		return [3]bool{true, false, true}, true
	case sqltypes.CmpLT:
		return [3]bool{true, false, false}, true
	case sqltypes.CmpLE:
		return [3]bool{true, true, false}, true
	case sqltypes.CmpGT:
		return [3]bool{false, false, true}, true
	case sqltypes.CmpGE:
		return [3]bool{false, true, true}, true
	default:
		return [3]bool{}, false
	}
}

// numericThreeWay is the inlined numeric comparison kernel shared by the
// batched Value and Tri comparison evaluators. It mirrors sqltypes.Compare
// exactly (including NaN falling through to "equal"); ok is false when
// either operand is non-numeric or NULL, in which case callers must take
// the generic sqltypes.Cmp path.
func numericThreeWay(a, c sqltypes.Value) (int, bool) {
	ak, ck := a.Kind(), c.Kind()
	if ak == sqltypes.KindInt && ck == sqltypes.KindInt {
		ai, ci := a.Int(), c.Int()
		switch {
		case ai < ci:
			return -1, true
		case ai > ci:
			return 1, true
		default:
			return 0, true
		}
	}
	if (ak == sqltypes.KindInt || ak == sqltypes.KindFloat) &&
		(ck == sqltypes.KindInt || ck == sqltypes.KindFloat) {
		af, _ := a.AsFloat()
		cf, _ := c.AsFloat()
		switch {
		case af < cf:
			return -1, true
		case af > cf:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// CompileVec translates an algebra expression into a factory of batched
// evaluators against the given input schema. Arithmetic, comparisons, logic,
// CASE and builtin calls evaluate column-at-a-time; AND/OR/CASE mask the
// positions they evaluate so short-circuit semantics (e.g. guarded division)
// match the row engine exactly. Expressions the vectorized path cannot
// handle natively (UDF calls, subqueries) fall back to per-row evaluation of
// the compiled row expression over the batch.
func CompileVec(e algebra.Expr, schema []algebra.Column, r CallResolver) (VecFactory, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		for i, c := range schema {
			if c.Matches(x.Qual, x.Name) {
				idx := i
				col := c
				return stateless(func(_ *Ctx, b *Batch) ([]sqltypes.Value, error) {
					if idx >= b.Width() {
						return nil, Errorf("batch too narrow for column %s", col)
					}
					return b.Cols[idx], nil
				}), nil
			}
		}
		return nil, Errorf("unresolved column %s", x)

	case *algebra.Const:
		v := x.Val
		// The constant vector is precomputed once and served read-only, so
		// all instances (and concurrent executions) can share it; batches
		// larger than the default size allocate per call.
		shared := make([]sqltypes.Value, DefaultBatchSize)
		for i := range shared {
			shared[i] = v
		}
		return stateless(func(_ *Ctx, b *Batch) ([]sqltypes.Value, error) {
			n := b.Physical()
			if n <= len(shared) {
				return shared[:n], nil
			}
			buf := make([]sqltypes.Value, n)
			for i := range buf {
				buf[i] = v
			}
			return buf, nil
		}), nil

	case *algebra.ParamRef:
		name := x.Name
		return func() VecEvaluator {
			var buf []sqltypes.Value
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				v, ok := ctx.Get(name)
				if !ok {
					return nil, Errorf("unbound parameter :%s", name)
				}
				buf = vecBuf(buf, b.Physical())
				for i := range buf {
					buf[i] = v
				}
				return buf, nil
			}
		}, nil

	case *algebra.Arith:
		// Single-column float chains fuse into a register kernel (see
		// vec_kernel.go): one read and one write per element.
		if idx, fn, ok := floatKernelExpr(x, schema); ok && fn != nil {
			return compileArithKernel(x, idx, fn, schema, r)
		}
		lF, err := CompileVec(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rF, err := CompileVec(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func() VecEvaluator {
			l, rhs := lF(), rF()
			var buf []sqltypes.Value
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				lv, err := l(ctx, b)
				if err != nil {
					return nil, err
				}
				rv, err := rhs(ctx, b)
				if err != nil {
					return nil, err
				}
				buf = vecBuf(buf, b.Physical())
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					a, c := lv[p], rv[p]
					// Inlined numeric kernels for the non-erroring cases; zero
					// divisors and non-numeric operands take the generic path so
					// errors and NULL propagation match the row engine exactly.
					ak, ck := a.Kind(), c.Kind()
					if ak == sqltypes.KindInt && ck == sqltypes.KindInt {
						x, y := a.Int(), c.Int()
						switch op {
						case sqltypes.OpAdd:
							buf[p] = sqltypes.NewInt(x + y)
							continue
						case sqltypes.OpSub:
							buf[p] = sqltypes.NewInt(x - y)
							continue
						case sqltypes.OpMul:
							buf[p] = sqltypes.NewInt(x * y)
							continue
						case sqltypes.OpDiv:
							if y != 0 {
								buf[p] = sqltypes.NewInt(x / y)
								continue
							}
						case sqltypes.OpMod:
							if y != 0 {
								buf[p] = sqltypes.NewInt(x % y)
								continue
							}
						}
					} else if (ak == sqltypes.KindInt || ak == sqltypes.KindFloat) &&
						(ck == sqltypes.KindInt || ck == sqltypes.KindFloat) {
						x, _ := a.AsFloat()
						y, _ := c.AsFloat()
						switch op {
						case sqltypes.OpAdd:
							buf[p] = sqltypes.NewFloat(x + y)
							continue
						case sqltypes.OpSub:
							buf[p] = sqltypes.NewFloat(x - y)
							continue
						case sqltypes.OpMul:
							buf[p] = sqltypes.NewFloat(x * y)
							continue
						case sqltypes.OpDiv:
							if y != 0 {
								buf[p] = sqltypes.NewFloat(x / y)
								continue
							}
						}
					}
					v, err := sqltypes.Arith(op, a, c)
					if err != nil {
						return nil, err
					}
					buf[p] = v
				}
				return buf, nil
			}
		}, nil

	case *algebra.Cmp:
		lF, err := CompileVec(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rF, err := CompileVec(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		op := x.Op
		accepts, haveTable := cmpAccepts(op)
		trueV, falseV := sqltypes.NewBool(true), sqltypes.NewBool(false)
		return func() VecEvaluator {
			l, rhs := lF(), rF()
			var buf []sqltypes.Value
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				lv, err := l(ctx, b)
				if err != nil {
					return nil, err
				}
				rv, err := rhs(ctx, b)
				if err != nil {
					return nil, err
				}
				buf = vecBuf(buf, b.Physical())
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					a, c := lv[p], rv[p]
					if haveTable {
						if cmp, ok := numericThreeWay(a, c); ok {
							if accepts[cmp+1] {
								buf[p] = trueV
							} else {
								buf[p] = falseV
							}
							continue
						}
					}
					buf[p] = sqltypes.TriValue(sqltypes.Cmp(op, a, c))
				}
				return buf, nil
			}
		}, nil

	case *algebra.Logic:
		lF, err := CompileVec(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rF, err := CompileVec(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		isAnd := x.Op == algebra.LogicAnd
		return func() VecEvaluator {
			l, rhs := lF(), rF()
			var buf []sqltypes.Value
			var need []int
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				lv, err := l(ctx, b)
				if err != nil {
					return nil, err
				}
				buf = vecBuf(buf, b.Physical())
				need = need[:0]
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					lt := sqltypes.TriOf(lv[p])
					// Short circuit exactly as the row evaluator does: AND with a
					// false side (or OR with a true side) never evaluates the
					// right operand, so guarded expressions cannot fail.
					if isAnd && lt == sqltypes.False {
						buf[p] = sqltypes.NewBool(false)
						continue
					}
					if !isAnd && lt == sqltypes.True {
						buf[p] = sqltypes.NewBool(true)
						continue
					}
					buf[p] = sqltypes.TriValue(lt) // stash the left truth value
					need = append(need, p)
				}
				if len(need) == 0 {
					return buf, nil
				}
				rv, err := rhs(ctx, b.Narrow(need))
				if err != nil {
					return nil, err
				}
				for _, p := range need {
					lt := sqltypes.TriOf(buf[p])
					rt := sqltypes.TriOf(rv[p])
					if isAnd {
						buf[p] = sqltypes.TriValue(lt.And(rt))
					} else {
						buf[p] = sqltypes.TriValue(lt.Or(rt))
					}
				}
				return buf, nil
			}
		}, nil

	case *algebra.Not:
		innerF, err := CompileVec(x.E, schema, r)
		if err != nil {
			return nil, err
		}
		return func() VecEvaluator {
			inner := innerF()
			var buf []sqltypes.Value
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				iv, err := inner(ctx, b)
				if err != nil {
					return nil, err
				}
				buf = vecBuf(buf, b.Physical())
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					buf[p] = sqltypes.TriValue(sqltypes.TriOf(iv[p]).Not())
				}
				return buf, nil
			}
		}, nil

	case *algebra.IsNull:
		innerF, err := CompileVec(x.E, schema, r)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func() VecEvaluator {
			inner := innerF()
			var buf []sqltypes.Value
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				iv, err := inner(ctx, b)
				if err != nil {
					return nil, err
				}
				buf = vecBuf(buf, b.Physical())
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					buf[p] = sqltypes.NewBool(iv[p].IsNull() != neg)
				}
				return buf, nil
			}
		}, nil

	case *algebra.Case:
		type armF struct{ cond, then VecFactory }
		armFs := make([]armF, len(x.Whens))
		for i, w := range x.Whens {
			c, err := CompileVec(w.Cond, schema, r)
			if err != nil {
				return nil, err
			}
			t, err := CompileVec(w.Then, schema, r)
			if err != nil {
				return nil, err
			}
			armFs[i] = armF{c, t}
		}
		var elseF VecFactory
		if x.Else != nil {
			var err error
			elseF, err = CompileVec(x.Else, schema, r)
			if err != nil {
				return nil, err
			}
		}
		return func() VecEvaluator {
			type arm struct{ cond, then VecEvaluator }
			arms := make([]arm, len(armFs))
			for i, f := range armFs {
				arms[i] = arm{f.cond(), f.then()}
			}
			var elseEv VecEvaluator
			if elseF != nil {
				elseEv = elseF()
			}
			var buf []sqltypes.Value
			return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
				buf = vecBuf(buf, b.Physical())
				// Rows still undecided: start with all live positions, and peel
				// off the ones each WHEN arm settles (conditions and THEN values
				// evaluate only on undecided/matching rows, as in the row path).
				undecided := make([]int, 0, b.Len())
				n := b.Len()
				for i := 0; i < n; i++ {
					undecided = append(undecided, b.LiveAt(i))
				}
				for _, a := range arms {
					if len(undecided) == 0 {
						break
					}
					cv, err := a.cond(ctx, b.Narrow(undecided))
					if err != nil {
						return nil, err
					}
					var taken, rest []int
					for _, p := range undecided {
						if sqltypes.TriOf(cv[p]) == sqltypes.True {
							taken = append(taken, p)
						} else {
							rest = append(rest, p)
						}
					}
					if len(taken) > 0 {
						tv, err := a.then(ctx, b.Narrow(taken))
						if err != nil {
							return nil, err
						}
						for _, p := range taken {
							buf[p] = tv[p]
						}
					}
					undecided = rest
				}
				if len(undecided) > 0 {
					if elseEv != nil {
						ev, err := elseEv(ctx, b.Narrow(undecided))
						if err != nil {
							return nil, err
						}
						for _, p := range undecided {
							buf[p] = ev[p]
						}
					} else {
						for _, p := range undecided {
							buf[p] = sqltypes.Null
						}
					}
				}
				return buf, nil
			}
		}, nil

	case *algebra.Call:
		if fn, ok := builtinScalar(strings.ToLower(x.Name), len(x.Args)); ok {
			argFs := make([]VecFactory, len(x.Args))
			for i, a := range x.Args {
				f, err := CompileVec(a, schema, r)
				if err != nil {
					return nil, err
				}
				argFs[i] = f
			}
			return func() VecEvaluator {
				args := Instantiate(argFs)
				var buf []sqltypes.Value
				argVecs := make([][]sqltypes.Value, len(args))
				rowArgs := make([]sqltypes.Value, len(args))
				return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
					for i, a := range args {
						v, err := a(ctx, b)
						if err != nil {
							return nil, err
						}
						argVecs[i] = v
					}
					buf = vecBuf(buf, b.Physical())
					n := b.Len()
					for i := 0; i < n; i++ {
						p := b.LiveAt(i)
						for j := range argVecs {
							rowArgs[j] = argVecs[j][p]
						}
						v, err := fn(rowArgs)
						if err != nil {
							return nil, err
						}
						buf[p] = v
					}
					return buf, nil
				}
			}, nil
		}
		// Non-builtin calls (UDFs) run through the row evaluator.
		return rowFallbackVec(e, schema, r)

	default:
		// Subqueries, EXISTS and anything newly added evaluate row-at-a-time.
		return rowFallbackVec(e, schema, r)
	}
}

// rowFallbackVec wraps the row Evaluator for expressions with no native
// vectorized form: the batch's live rows are materialized one at a time.
// (Row evaluators are themselves stateless, so one compiled instance serves
// all executions; only the materialization buffers are per-instance.)
func rowFallbackVec(e algebra.Expr, schema []algebra.Column, r CallResolver) (VecFactory, error) {
	ev, err := Compile(e, schema, r)
	if err != nil {
		return nil, err
	}
	return func() VecEvaluator {
		var buf []sqltypes.Value
		var rowBuf storage.Row
		return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
			buf = vecBuf(buf, b.Physical())
			if cap(rowBuf) < b.Width() {
				rowBuf = make(storage.Row, b.Width())
			}
			rowBuf = rowBuf[:b.Width()]
			n := b.Len()
			for i := 0; i < n; i++ {
				p := b.LiveAt(i)
				for j, c := range b.Cols {
					rowBuf[j] = c[p]
				}
				v, err := ev(ctx, rowBuf)
				if err != nil {
					return nil, err
				}
				buf[p] = v
			}
			return buf, nil
		}
	}, nil
}

// CompileVecAll compiles a list of expressions against the same schema.
func CompileVecAll(exprs []algebra.Expr, schema []algebra.Column, r CallResolver) ([]VecFactory, error) {
	out := make([]VecFactory, len(exprs))
	for i, e := range exprs {
		f, err := CompileVec(e, schema, r)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}
