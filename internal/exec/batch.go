// Vectorized batch execution. A Batch carries a chunk of rows column-wise
// (one value vector per output column) plus a selection vector of live
// positions, so operators can process many rows per virtual call and
// expression evaluation can run tight per-column loops instead of
// per-row interface dispatch. Batch operators implement both BatchNode and
// the row Node interface (through an adapter), so batch and row operators
// compose freely and the refactor lands incrementally.
package exec

import (
	"time"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// DefaultBatchSize is the number of rows a batch operator requests per
// NextBatch call: large enough to amortize dispatch, small enough to stay
// cache-resident.
const DefaultBatchSize = 1024

// Batch is a column-major chunk of rows. Cols holds one vector per column;
// all vectors have the same physical length. Sel, when non-nil, lists the
// physical positions that are live (in output order); when nil all physical
// positions are live. A zero-column batch represents rows with no columns
// (the Single relation), so the physical length is tracked explicitly.
type Batch struct {
	Cols [][]sqltypes.Value
	Sel  []int
	n    int // physical row count
}

// NewBatch allocates a batch of the given width with capacity for cap rows.
func NewBatch(width, capacity int) *Batch {
	cols := make([][]sqltypes.Value, width)
	for i := range cols {
		cols[i] = make([]sqltypes.Value, 0, capacity)
	}
	return &Batch{Cols: cols}
}

// Physical returns the physical row count (including filtered-out rows).
func (b *Batch) Physical() int { return b.n }

// Len returns the live row count.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// Width returns the column count.
func (b *Batch) Width() int { return len(b.Cols) }

// LiveAt returns the physical position of the i-th live row.
func (b *Batch) LiveAt(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// AppendRow adds one row at the end of the batch (must not have a selection
// vector yet).
func (b *Batch) AppendRow(r storage.Row) {
	for i := range b.Cols {
		b.Cols[i] = append(b.Cols[i], r[i])
	}
	b.n++
}

// SetPhysical records the physical length for batches filled column-wise
// (or zero-width batches).
func (b *Batch) SetPhysical(n int) { b.n = n }

// Row materializes the live row at physical position pos.
func (b *Batch) Row(pos int) storage.Row {
	out := make(storage.Row, len(b.Cols))
	for i, c := range b.Cols {
		out[i] = c[pos]
	}
	return out
}

// AppendTo materializes all live rows onto dst and returns it. The rows are
// carved out of one arena allocation per batch (rather than one per row),
// which is where batch execution recovers most of its materialization cost.
func (b *Batch) AppendTo(dst []storage.Row) []storage.Row {
	n := b.Len()
	w := len(b.Cols)
	if n == 0 || w == 0 {
		for i := 0; i < n; i++ {
			dst = append(dst, storage.Row{})
		}
		return dst
	}
	arena := make([]sqltypes.Value, n*w)
	for i := 0; i < n; i++ {
		p := b.LiveAt(i)
		row := arena[i*w : (i+1)*w : (i+1)*w]
		for c, col := range b.Cols {
			row[c] = col[p]
		}
		dst = append(dst, row)
	}
	return dst
}

// Narrow returns a view of the batch restricted to the given physical
// positions (used to mask short-circuit evaluation). The column vectors are
// shared, not copied.
func (b *Batch) Narrow(sel []int) *Batch {
	return &Batch{Cols: b.Cols, Sel: sel, n: b.n}
}

// BatchIter produces batches of up to max rows. It returns (nil, false, nil)
// at end of stream; a returned batch is owned by the iterator and only valid
// until the next NextBatch call.
type BatchIter interface {
	NextBatch(max int) (*Batch, bool, error)
	Close() error
}

// BatchNode is a physical plan node with a native batch execution path. All
// batch operators also implement the row Node interface via an adapter, so
// they can feed row-at-a-time parents.
type BatchNode interface {
	Node
	OpenBatch(ctx *Ctx) (BatchIter, error)
}

// OpenBatches opens any node as a batch iterator: natively when the node is
// batch-capable, otherwise through a row-to-batch transposing adapter.
func OpenBatches(n Node, ctx *Ctx) (BatchIter, error) {
	var st *OpStats
	var start time.Time
	if ctx.prof != nil {
		st = ctx.prof.statsFor(n)
		st.Opens++
		start = time.Now()
	}
	if bn, ok := n.(BatchNode); ok {
		it, err := bn.OpenBatch(ctx)
		if err != nil {
			return nil, err
		}
		bi := BatchIter(contractWrap(it))
		if st != nil {
			st.Time += time.Since(start)
			bi = &profBatchIter{in: bi, st: st}
		}
		return bi, nil
	}
	it, err := n.Open(ctx)
	if err != nil {
		return nil, err
	}
	bi := BatchIter(contractWrap(&rowToBatchIter{in: it, width: len(n.Schema())}))
	if st != nil {
		st.Time += time.Since(start)
		bi = &profBatchIter{in: bi, st: st}
	}
	return bi, nil
}

// DrainBatches materializes all rows of a node, pulling batches when the
// node (or its adapter) supports them.
func DrainBatches(n Node, ctx *Ctx) ([]storage.Row, error) {
	bi, err := OpenBatches(n, ctx)
	if err != nil {
		return nil, err
	}
	defer bi.Close()
	var out []storage.Row
	for {
		if err := ctx.Cancelled(); err != nil {
			return nil, err
		}
		b, ok, err := bi.NextBatch(DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = b.AppendTo(out)
	}
}

// ---------------------------------------------------------------------------
// Bridge adapters
// ---------------------------------------------------------------------------

// rowToBatchIter transposes a row iterator into batches.
type rowToBatchIter struct {
	in    Iter
	width int
	buf   *Batch
}

func (r *rowToBatchIter) NextBatch(max int) (*Batch, bool, error) {
	if r.buf == nil {
		r.buf = NewBatch(r.width, max)
	}
	b := r.buf
	b.Sel = nil
	b.n = 0
	for i := range b.Cols {
		b.Cols[i] = b.Cols[i][:0]
	}
	for b.n < max {
		row, ok, err := r.in.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		b.AppendRow(row)
	}
	if b.n == 0 {
		return nil, false, nil
	}
	return b, true, nil
}

func (r *rowToBatchIter) Close() error { return r.in.Close() }

// batchToRowIter flattens a batch iterator into rows.
type batchToRowIter struct {
	in  BatchIter
	cur *Batch
	pos int // index into the live rows of cur
}

func (b *batchToRowIter) Next() (storage.Row, bool, error) {
	for {
		if b.cur != nil && b.pos < b.cur.Len() {
			row := b.cur.Row(b.cur.LiveAt(b.pos))
			b.pos++
			return row, true, nil
		}
		nb, ok, err := b.in.NextBatch(DefaultBatchSize)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		b.cur, b.pos = nb, 0
	}
}

func (b *batchToRowIter) Close() error { return b.in.Close() }

// openRowsViaBatches implements Node.Open for batch operators.
func openRowsViaBatches(n BatchNode, ctx *Ctx) (Iter, error) {
	bi, err := n.OpenBatch(ctx)
	if err != nil {
		return nil, err
	}
	return &batchToRowIter{in: bi}, nil
}
