package exec

// Zero-copy scan tests: BatchScan batches must alias the table version's
// column segments directly (no per-batch pivot), stop at segment
// boundaries, and fall back to a pivot buffer only for transaction-overlay
// rows.

import (
	"testing"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

func TestBatchScanAliasesSegments(t *testing.T) {
	n := storage.SegmentRows + 100
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(2 * i))}
	}
	tab := newTestTable(t, "z", []string{"a", "b"}, rows)
	segs := tab.Version().Segments()
	if len(segs) != 2 {
		t.Fatalf("fixture spans %d segments, want 2", len(segs))
	}

	before := storage.ZeroCopyScans()
	bi, err := NewBatchScan(tab, schema2("a", "b")).OpenBatch(NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer bi.Close()
	if storage.ZeroCopyScans() != before+1 {
		t.Fatal("zero-copy scan counter did not advance")
	}

	seg, off, total := 0, 0, 0
	for {
		b, ok, err := bi.NextBatch(512)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		sg := segs[seg]
		// The batch's vectors must be sub-slices of the segment's columns —
		// same backing array, no copy — and never span a segment boundary.
		if off+b.Len() > sg.Len() {
			t.Fatalf("batch at segment %d offset %d spans the boundary (%d rows)", seg, off, b.Len())
		}
		for c := 0; c < 2; c++ {
			if &b.Cols[c][0] != &sg.Col(c)[off] {
				t.Fatalf("batch at segment %d offset %d col %d does not alias storage", seg, off, c)
			}
		}
		total += b.Len()
		off += b.Len()
		if off == sg.Len() {
			seg, off = seg+1, 0
		}
	}
	if total != n {
		t.Fatalf("scan yielded %d rows, want %d", total, n)
	}
}

func TestBatchScanOverlayAfterSegments(t *testing.T) {
	base := []storage.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(2)},
		{sqltypes.NewInt(3), sqltypes.NewInt(6)},
	}
	tab := newTestTable(t, "z", []string{"a", "b"}, base)
	overlay := []storage.Row{
		{sqltypes.NewInt(100), sqltypes.NewInt(200)},
		{sqltypes.NewInt(101), sqltypes.NewInt(202)},
		{sqltypes.NewInt(102), sqltypes.NewInt(204)},
	}
	ctx := NewCtx(nil)
	ctx.SetSnapshot(nil, map[*storage.Table][]storage.Row{tab: overlay})

	bi, err := NewBatchScan(tab, schema2("a", "b")).OpenBatch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer bi.Close()
	var got []int64
	for {
		b, ok, err := bi.NextBatch(2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for i := 0; i < b.Len(); i++ {
			p := b.LiveAt(i)
			if b.Cols[1][p].Int() != 2*b.Cols[0][p].Int() {
				t.Fatalf("row (%v, %v) breaks the fixture", b.Cols[0][p], b.Cols[1][p])
			}
			got = append(got, b.Cols[0][p].Int())
		}
	}
	want := []int64{1, 3, 100, 101, 102}
	if len(got) != len(want) {
		t.Fatalf("scan yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan yielded %v, want %v (segments first, then overlay)", got, want)
		}
	}
}
