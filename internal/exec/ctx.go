// Package exec implements the physical execution engine: volcano-style
// iterators (scans, index lookups, filters, projections, nested-loop, hash
// and merge joins, hash aggregation, sorting), a correlated Apply operator
// for iterative plans, a compiled expression evaluator, and the UDF
// interpreter that provides the paper's baseline of tuple-at-a-time UDF
// invocation.
package exec

import (
	"context"
	"fmt"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Counters collects execution metrics used by the experiment harness.
type Counters struct {
	UDFCalls      int64 // scalar UDF invocations
	QueryExecs    int64 // embedded query executions inside UDFs
	PlanBuilds    int64 // embedded query plan constructions
	RowsProcessed int64
	Morsels       int64 // morsels executed by parallel pipeline workers
	Workers       int64 // parallel workers launched
}

// absorb adds a parallel worker's counters into c.
func (c *Counters) absorb(o *Counters) {
	c.UDFCalls += o.UDFCalls
	c.QueryExecs += o.QueryExecs
	c.PlanBuilds += o.PlanBuilds
	c.RowsProcessed += o.RowsProcessed
	c.Morsels += o.Morsels
	c.Workers += o.Workers
}

// Ctx is the per-query execution context: a stack of variable frames
// (UDF locals, bind parameters, correlation values), the UDF interpreter,
// the UDF call depth, and metric counters. A Ctx is not safe for concurrent
// use; concurrent queries each get their own Ctx (all cross-query state —
// catalog, storage, cached plans — lives behind locks in those packages).
type Ctx struct {
	frames   []map[string]sqltypes.Value
	Interp   *Interp
	Counters *Counters
	depth    int // current UDF call nesting (bounded by maxCallDepth)

	// goctx carries the caller's cancellation signal; done caches its Done
	// channel (nil for non-cancellable contexts, keeping Cancelled a single
	// nil check on the hot path). Operators poll Cancelled at their pull
	// boundaries: per row on the volcano path, per NextBatch on the
	// vectorized path, and per statement in the UDF interpreter.
	goctx context.Context
	done  <-chan struct{}

	// snap pins the storage versions every scan in this execution reads
	// (including embedded statements inside UDFs, which share the Ctx), so a
	// statement sees one consistent cut no matter how many appends publish
	// while it runs. nil falls back to each table's current version.
	// overlay carries a transaction's uncommitted rows per table
	// (read-your-writes); nil outside explicit transactions.
	snap    *storage.Snapshot
	overlay map[*storage.Table][]storage.Row

	// prof collects per-operator execution stats for EXPLAIN ANALYZE; nil
	// (the default) keeps instrumentation entirely off the execution path.
	prof *Profiler
}

// NewCtx returns a non-cancellable context with one (global) frame.
func NewCtx(interp *Interp) *Ctx {
	return NewCtxContext(context.Background(), interp)
}

// NewCtxContext returns a context whose execution is cancelled when goctx
// is: operators return goctx.Err() (unwrapped, so errors.Is sees
// context.Canceled / DeadlineExceeded) at the next pull boundary.
func NewCtxContext(goctx context.Context, interp *Interp) *Ctx {
	if goctx == nil {
		goctx = context.Background()
	}
	return &Ctx{
		frames:   []map[string]sqltypes.Value{{}},
		Interp:   interp,
		Counters: &Counters{},
		goctx:    goctx,
		done:     goctx.Done(),
	}
}

// SetSnapshot pins the storage snapshot (and optional transaction overlay)
// scans resolve through. Call before opening the plan.
func (c *Ctx) SetSnapshot(sn *storage.Snapshot, overlay map[*storage.Table][]storage.Row) {
	c.snap = sn
	c.overlay = overlay
}

// TableVersion resolves a table to the pinned version plus any uncommitted
// transaction-local rows layered on top of it.
func (c *Ctx) TableVersion(t *storage.Table) (*storage.TableVersion, []storage.Row) {
	var ov []storage.Row
	if c.overlay != nil {
		ov = c.overlay[t]
	}
	if c.snap != nil {
		return c.snap.Version(t), ov
	}
	return t.Version(), ov
}

// TableRows resolves a table to the rows a scan in this execution reads:
// the pinned version's rows, plus the transaction overlay when one is
// active (the combined slice is only materialized on that rare path).
func (c *Ctx) TableRows(t *storage.Table) []storage.Row {
	v, ov := c.TableVersion(t)
	base := v.Rows()
	if len(ov) == 0 {
		return base
	}
	out := make([]storage.Row, 0, len(base)+len(ov))
	out = append(out, base...)
	return append(out, ov...)
}

// Context returns the Go context the execution was started under.
func (c *Ctx) Context() context.Context {
	if c.goctx == nil {
		return context.Background()
	}
	return c.goctx
}

// Cancelled reports the cancellation error once the context is done, nil
// while execution may proceed. It is cheap enough to poll per row.
func (c *Ctx) Cancelled() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.goctx.Err()
	default:
		return nil
	}
}

// forkWorker clones the context for a parallel pipeline worker: a private
// snapshot of the variable frames (so correlation parameters visible at fork
// time keep resolving, while UDF calls inside the worker push frames without
// racing the parent) and private counters (absorbed by the parent when the
// parallel operator finishes). The interpreter is shared; its cross-query
// state is internally locked.
func (c *Ctx) forkWorker() *Ctx {
	frames := make([]map[string]sqltypes.Value, len(c.frames))
	for i, f := range c.frames {
		nf := make(map[string]sqltypes.Value, len(f))
		for k, v := range f {
			nf[k] = v
		}
		frames[i] = nf
	}
	w := &Ctx{frames: frames, Interp: c.Interp, Counters: &Counters{}, depth: c.depth,
		goctx: c.goctx, done: c.done, snap: c.snap, overlay: c.overlay}
	if c.prof != nil {
		// A private profiler per worker: stats merge into the parent's via
		// absorbWorker alongside Counters.absorb, never racing the parent.
		w.prof = NewProfiler()
	}
	return w
}

// Push adds a new variable frame (entering a UDF call or apply scope).
func (c *Ctx) Push() {
	c.frames = append(c.frames, map[string]sqltypes.Value{})
}

// Pop removes the top frame.
func (c *Ctx) Pop() {
	if len(c.frames) <= 1 {
		panic("exec: frame stack underflow")
	}
	c.frames = c.frames[:len(c.frames)-1]
}

// Depth reports the frame stack depth.
func (c *Ctx) Depth() int { return len(c.frames) }

// Get looks a variable up, innermost frame first.
func (c *Ctx) Get(name string) (sqltypes.Value, bool) {
	for i := len(c.frames) - 1; i >= 0; i-- {
		if v, ok := c.frames[i][name]; ok {
			return v, true
		}
	}
	return sqltypes.Null, false
}

// Set defines (or overwrites) a variable in the top frame.
func (c *Ctx) Set(name string, v sqltypes.Value) {
	c.frames[len(c.frames)-1][name] = v
}

// Assign overwrites the innermost existing binding of name, or defines it
// in the top frame when absent (assignment to an undeclared variable).
func (c *Ctx) Assign(name string, v sqltypes.Value) {
	for i := len(c.frames) - 1; i >= 0; i-- {
		if _, ok := c.frames[i][name]; ok {
			c.frames[i][name] = v
			return
		}
	}
	c.Set(name, v)
}

// Node is a physical plan node. A Node is immutable after construction and
// can be opened many times (each Open yields an independent iterator).
type Node interface {
	Schema() []algebra.Column
	Open(ctx *Ctx) (Iter, error)
}

// Iter is a row iterator. Next returns (row, true, nil) per row and
// (nil, false, nil) at end of stream.
type Iter interface {
	Next() (storage.Row, bool, error)
	Close() error
}

// Drain materializes all rows of a node under the given context. Nodes with
// a native batch path are drained batch-wise.
func Drain(n Node, ctx *Ctx) ([]storage.Row, error) {
	if _, ok := n.(BatchNode); ok {
		return DrainBatches(n, ctx)
	}
	it, err := OpenRows(n, ctx)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []storage.Row
	for {
		if err := ctx.Cancelled(); err != nil {
			return nil, err
		}
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// sliceIter iterates a materialized row slice.
type sliceIter struct {
	rows []storage.Row
	pos  int
}

func (s *sliceIter) Next() (storage.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sliceIter) Close() error { return nil }

// errIter is an iterator that fails immediately (used by deferred errors).
type errIter struct{ err error }

func (e *errIter) Next() (storage.Row, bool, error) { return nil, false, e.err }
func (e *errIter) Close() error                     { return nil }

// Errorf builds an execution error.
func Errorf(format string, args ...any) error {
	return fmt.Errorf("exec: %s", fmt.Sprintf(format, args...))
}
