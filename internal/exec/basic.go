package exec

import (
	"sort"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// ---------------------------------------------------------------------------
// TableScan
// ---------------------------------------------------------------------------

// TableScan reads every row of a base table.
type TableScan struct {
	Tab    *storage.Table
	schema []algebra.Column
}

// NewTableScan builds a scan over a table with the given output schema.
func NewTableScan(tab *storage.Table, schema []algebra.Column) *TableScan {
	return &TableScan{Tab: tab, schema: schema}
}

// Schema implements Node.
func (t *TableScan) Schema() []algebra.Column { return t.schema }

// Open implements Node.
func (t *TableScan) Open(ctx *Ctx) (Iter, error) {
	return &sliceIter{rows: ctx.TableRows(t.Tab)}, nil
}

// ---------------------------------------------------------------------------
// IndexLookup
// ---------------------------------------------------------------------------

// IndexLookup probes a hash index on one column with an equality key
// computed at open time (the key expression may reference parameters or
// correlation variables, so each Open can yield different rows).
type IndexLookup struct {
	Tab    *storage.Table
	Col    string
	Key    Evaluator
	schema []algebra.Column
}

// NewIndexLookup builds an index equality probe.
func NewIndexLookup(tab *storage.Table, col string, key Evaluator, schema []algebra.Column) *IndexLookup {
	return &IndexLookup{Tab: tab, Col: col, Key: key, schema: schema}
}

// Schema implements Node.
func (n *IndexLookup) Schema() []algebra.Column { return n.schema }

// Open implements Node.
func (n *IndexLookup) Open(ctx *Ctx) (Iter, error) {
	ver, overlay := ctx.TableVersion(n.Tab)
	idx, err := ver.EnsureIndex(n.Col)
	if err != nil {
		return nil, err
	}
	key, err := n.Key(ctx, nil)
	if err != nil {
		return nil, err
	}
	if key.IsNull() {
		return &sliceIter{}, nil // NULL never matches an equality
	}
	probe := sqltypes.KeyOf(key)
	ordinals := idx[probe]
	rows := make([]storage.Row, len(ordinals), len(ordinals)+len(overlay))
	for i, o := range ordinals {
		// Per-ordinal materialization out of the column segments: a lookup
		// touching a handful of rows never forces the full row-view pivot.
		rows[i] = ver.RowAt(o)
	}
	// Uncommitted transaction-local rows are not in the version's index;
	// they are few, so a linear probe keeps read-your-writes correct.
	if len(overlay) > 0 {
		ord := n.Tab.Meta.ColIndex(n.Col)
		for _, r := range overlay {
			if !r[ord].IsNull() && sqltypes.KeyOf(r[ord]) == probe {
				rows = append(rows, r)
			}
		}
	}
	return &sliceIter{rows: rows}, nil
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

// Filter passes rows whose predicate evaluates to TRUE.
type Filter struct {
	Pred  Evaluator
	Child Node
}

// Schema implements Node.
func (f *Filter) Schema() []algebra.Column { return f.Child.Schema() }

// Open implements Node.
func (f *Filter) Open(ctx *Ctx) (Iter, error) {
	it, err := OpenRows(f.Child, ctx)
	if err != nil {
		return nil, err
	}
	return &filterIter{pred: f.Pred, in: it, ctx: ctx}, nil
}

type filterIter struct {
	pred Evaluator
	in   Iter
	ctx  *Ctx
}

func (f *filterIter) Next() (storage.Row, bool, error) {
	for {
		if err := f.ctx.Cancelled(); err != nil {
			return nil, false, err
		}
		r, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := f.pred(f.ctx, r)
		if err != nil {
			return nil, false, err
		}
		if sqltypes.TriOf(v) == sqltypes.True {
			return r, true, nil
		}
	}
}

func (f *filterIter) Close() error { return f.in.Close() }

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

// Project computes output columns from each input row. With Dedup set it
// also eliminates duplicate output rows.
type Project struct {
	Exprs  []Evaluator
	Dedup  bool
	Child  Node
	schema []algebra.Column
}

// NewProject builds a projection node.
func NewProject(exprs []Evaluator, dedup bool, child Node, schema []algebra.Column) *Project {
	return &Project{Exprs: exprs, Dedup: dedup, Child: child, schema: schema}
}

// Schema implements Node.
func (p *Project) Schema() []algebra.Column { return p.schema }

// Open implements Node.
func (p *Project) Open(ctx *Ctx) (Iter, error) {
	it, err := OpenRows(p.Child, ctx)
	if err != nil {
		return nil, err
	}
	pi := &projectIter{exprs: p.Exprs, in: it, ctx: ctx}
	if p.Dedup {
		pi.seen = map[string]bool{}
	}
	return pi, nil
}

type projectIter struct {
	exprs []Evaluator
	in    Iter
	ctx   *Ctx
	seen  map[string]bool // non-nil for DISTINCT
}

func (p *projectIter) Next() (storage.Row, bool, error) {
	for {
		if err := p.ctx.Cancelled(); err != nil {
			return nil, false, err
		}
		r, ok, err := p.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		out := make(storage.Row, len(p.exprs))
		for i, e := range p.exprs {
			v, err := e(p.ctx, r)
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		if p.seen != nil {
			k := sqltypes.KeyOf(out...)
			if p.seen[k] {
				continue
			}
			p.seen[k] = true
		}
		p.ctx.Counters.RowsProcessed++
		return out, true, nil
	}
}

func (p *projectIter) Close() error { return p.in.Close() }

// ---------------------------------------------------------------------------
// Limit
// ---------------------------------------------------------------------------

// Limit passes the first N rows.
type Limit struct {
	N     int64
	Child Node
}

// Schema implements Node.
func (l *Limit) Schema() []algebra.Column { return l.Child.Schema() }

// Open implements Node.
func (l *Limit) Open(ctx *Ctx) (Iter, error) {
	it, err := OpenRows(l.Child, ctx)
	if err != nil {
		return nil, err
	}
	return &limitIter{n: l.N, in: it}, nil
}

type limitIter struct {
	n    int64
	seen int64
	in   Iter
}

func (l *limitIter) Next() (storage.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	r, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return r, true, nil
}

func (l *limitIter) Close() error { return l.in.Close() }

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

// SortSpec is one compiled sort key.
type SortSpec struct {
	Key  Evaluator
	Desc bool
}

// Sort materializes and orders the child's rows.
type Sort struct {
	Keys  []SortSpec
	Child Node
}

// Schema implements Node.
func (s *Sort) Schema() []algebra.Column { return s.Child.Schema() }

// Open implements Node.
func (s *Sort) Open(ctx *Ctx) (Iter, error) {
	rows, err := Drain(s.Child, ctx)
	if err != nil {
		return nil, err
	}
	type keyed struct {
		row  storage.Row
		keys []sqltypes.Value
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		keys := make([]sqltypes.Value, len(s.Keys))
		for j, sp := range s.Keys {
			v, err := sp.Key(ctx, r)
			if err != nil {
				return nil, err
			}
			keys[j] = v
		}
		ks[i] = keyed{row: r, keys: keys}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		for k, sp := range s.Keys {
			c := sqltypes.TotalCompare(ks[i].keys[k], ks[j].keys[k])
			if c != 0 {
				if sp.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	out := make([]storage.Row, len(ks))
	for i, k := range ks {
		out[i] = k.row
	}
	return &sliceIter{rows: out}, nil
}

// ---------------------------------------------------------------------------
// UnionAll, Single, Values
// ---------------------------------------------------------------------------

// UnionAll concatenates two inputs.
type UnionAll struct {
	L, R Node
}

// Schema implements Node.
func (u *UnionAll) Schema() []algebra.Column { return u.L.Schema() }

// Open implements Node.
func (u *UnionAll) Open(ctx *Ctx) (Iter, error) {
	li, err := OpenRows(u.L, ctx)
	if err != nil {
		return nil, err
	}
	return &unionIter{ctx: ctx, cur: li, rest: u.R}, nil
}

type unionIter struct {
	ctx  *Ctx
	cur  Iter
	rest Node // nil once switched
}

func (u *unionIter) Next() (storage.Row, bool, error) {
	for {
		r, ok, err := u.cur.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return r, true, nil
		}
		if u.rest == nil {
			return nil, false, nil
		}
		if err := u.cur.Close(); err != nil {
			return nil, false, err
		}
		ri, err := OpenRows(u.rest, u.ctx)
		if err != nil {
			return nil, false, err
		}
		u.cur, u.rest = ri, nil
	}
}

func (u *unionIter) Close() error { return u.cur.Close() }

// Single produces one empty row (the S relation).
type Single struct{}

// Schema implements Node.
func (s *Single) Schema() []algebra.Column { return nil }

// Open implements Node.
func (s *Single) Open(ctx *Ctx) (Iter, error) {
	return &sliceIter{rows: []storage.Row{{}}}, nil
}

// Values produces a fixed materialized set of rows (temp tables).
type Values struct {
	Rows   []storage.Row
	schema []algebra.Column
}

// NewValues wraps materialized rows as a node.
func NewValues(rows []storage.Row, schema []algebra.Column) *Values {
	return &Values{Rows: rows, schema: schema}
}

// Schema implements Node.
func (v *Values) Schema() []algebra.Column { return v.schema }

// Open implements Node.
func (v *Values) Open(ctx *Ctx) (Iter, error) { return &sliceIter{rows: v.Rows}, nil }

// FuncTable evaluates a table-valued UDF at open time, materializing its
// rows. Argument evaluators run against parameters/correlation only.
type FuncTable struct {
	Name   string
	Args   []Evaluator
	schema []algebra.Column
}

// NewFuncTable builds a table-function node.
func NewFuncTable(name string, args []Evaluator, schema []algebra.Column) *FuncTable {
	return &FuncTable{Name: name, Args: args, schema: schema}
}

// Schema implements Node.
func (f *FuncTable) Schema() []algebra.Column { return f.schema }

// Open implements Node.
func (f *FuncTable) Open(ctx *Ctx) (Iter, error) {
	if ctx.Interp == nil {
		return nil, Errorf("table function %s requires an interpreter", f.Name)
	}
	args := make([]sqltypes.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a(ctx, nil)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	rows, err := ctx.Interp.CallTable(ctx, f.Name, args)
	if err != nil {
		return nil, err
	}
	return &sliceIter{rows: rows}, nil
}
