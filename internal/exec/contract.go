package exec

import "sync/atomic"

// The BatchIter contract — NextBatch(max) never yields a batch with more
// than max live rows — is what lets batch sizes propagate through operator
// trees without any consumer re-checking. This file provides a test hook
// that wraps every iterator handed across an operator edge (OpenBatches and
// the parallel segment pipelines) with a checker, so the differential
// corpus doubles as a property test of the contract for every operator,
// including ones added later.

// batchContractHook, when set, wraps batch iterators at every operator
// edge. Test-only: install with SetBatchContractHook before running queries
// and remove it afterwards; the hook itself must be safe for concurrent use
// (parallel workers open iterators from many goroutines).
var batchContractHook atomic.Pointer[func(BatchIter) BatchIter]

// SetBatchContractHook installs (or, with nil, removes) the contract hook.
func SetBatchContractHook(h func(BatchIter) BatchIter) {
	if h == nil {
		batchContractHook.Store(nil)
		return
	}
	batchContractHook.Store(&h)
}

// contractWrap applies the hook when installed.
func contractWrap(it BatchIter) BatchIter {
	if h := batchContractHook.Load(); h != nil {
		return (*h)(it)
	}
	return it
}

// NewContractChecker wraps an iterator so every NextBatch(max) result is
// checked against the contract; violations are reported through onViolation
// with the observed live row count and the requested max.
func NewContractChecker(in BatchIter, onViolation func(got, max int)) BatchIter {
	return &contractIter{in: in, onViolation: onViolation}
}

type contractIter struct {
	in          BatchIter
	onViolation func(got, max int)
}

func (c *contractIter) NextBatch(max int) (*Batch, bool, error) {
	b, ok, err := c.in.NextBatch(max)
	if ok && b.Len() > max {
		c.onViolation(b.Len(), max)
	}
	return b, ok, err
}

func (c *contractIter) Close() error { return c.in.Close() }
