package exec

import (
	"sync/atomic"

	"udfdecorr/internal/sqltypes"
)

// The BatchIter contract has two clauses:
//
//  1. Size: NextBatch(max) never yields a batch with more than max live
//     rows, which lets batch sizes propagate through operator trees without
//     any consumer re-checking.
//
//  2. Ownership: the returned *Batch — the struct AND every column vector it
//     references — is owned by the iterator and valid only until the next
//     NextBatch or Close call. Scan iterators alias storage segments
//     zero-copy and rewrite their header in place; other operators reuse
//     private buffers. A consumer that needs data beyond that window must
//     copy it out (Batch.AppendTo / Batch.Row); individual sqltypes.Value
//     elements are immutable and always safe to keep.
//
// This file provides a test hook that wraps every iterator handed across an
// operator edge (OpenBatches and the parallel segment pipelines) with a
// checker, so the differential corpus doubles as a property test of the
// contract for every operator, including ones added later.

// batchContractHook, when set, wraps batch iterators at every operator
// edge. Test-only: install with SetBatchContractHook before running queries
// and remove it afterwards; the hook itself must be safe for concurrent use
// (parallel workers open iterators from many goroutines).
var batchContractHook atomic.Pointer[func(BatchIter) BatchIter]

// SetBatchContractHook installs (or, with nil, removes) the contract hook.
func SetBatchContractHook(h func(BatchIter) BatchIter) {
	if h == nil {
		batchContractHook.Store(nil)
		return
	}
	batchContractHook.Store(&h)
}

// contractWrap applies the hook when installed.
func contractWrap(it BatchIter) BatchIter {
	if h := batchContractHook.Load(); h != nil {
		return (*h)(it)
	}
	return it
}

// BatchPoison is the sentinel written over expired batch copies by the
// contract checker. A consumer that reads a batch past its validity window
// sees this value, so result comparisons in the property test flag the
// retention.
var BatchPoison = sqltypes.NewString("\x00batch-contract-poison\x00")

// NewContractChecker wraps an iterator so every NextBatch(max) result is
// checked against the size clause (violations reported through onViolation
// with the observed live row count and the requested max) AND the ownership
// clause: each batch is handed out as a private deep copy in one of two
// alternating buffers, and the previous handout is overwritten with
// BatchPoison the moment the next call is made. A consumer that retains a
// batch — the pointer or its column slices — past the contract window reads
// poison instead of silently reading whatever the producer reused the
// buffer for, turning an aliasing bug into a deterministic wrong answer.
func NewContractChecker(in BatchIter, onViolation func(got, max int)) BatchIter {
	return &contractIter{in: in, onViolation: onViolation}
}

type contractIter struct {
	in          BatchIter
	onViolation func(got, max int)
	bufs        [2]*Batch
	cur         int
}

func (c *contractIter) NextBatch(max int) (*Batch, bool, error) {
	b, ok, err := c.in.NextBatch(max)
	if !ok || err != nil {
		// End of stream or error also ends the previous batch's window.
		poisonBatch(c.bufs[c.cur])
		return b, ok, err
	}
	if b.Len() > max {
		c.onViolation(b.Len(), max)
	}
	c.cur ^= 1
	poisonBatch(c.bufs[c.cur^1])
	out := c.bufs[c.cur]
	if out == nil {
		out = &Batch{}
		c.bufs[c.cur] = out
	}
	copyBatchInto(out, b)
	return out, true, nil
}

func (c *contractIter) Close() error {
	poisonBatch(c.bufs[0])
	poisonBatch(c.bufs[1])
	return c.in.Close()
}

// poisonBatch overwrites a previously handed-out copy with the sentinel.
// Only checker-owned buffers are ever poisoned — never the producer's
// vectors, which may alias immutable storage segments.
func poisonBatch(b *Batch) {
	if b == nil {
		return
	}
	for _, col := range b.Cols {
		for i := range col {
			col[i] = BatchPoison
		}
	}
}

// copyBatchInto deep-copies src's column vectors and selection into dst's
// reusable backing.
func copyBatchInto(dst, src *Batch) {
	if cap(dst.Cols) < len(src.Cols) {
		dst.Cols = make([][]sqltypes.Value, len(src.Cols))
	}
	dst.Cols = dst.Cols[:len(src.Cols)]
	for i, col := range src.Cols {
		dst.Cols[i] = append(dst.Cols[i][:0], col...)
	}
	if src.Sel == nil {
		dst.Sel = nil
	} else {
		dst.Sel = append(dst.Sel[:0], src.Sel...)
	}
	dst.n = src.n
}
