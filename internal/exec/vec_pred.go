package exec

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
)

// VecPredicate is a compiled predicate over a whole batch, producing
// three-valued truth bytes instead of boolean Values: filters never
// materialize boolean vectors (and never pay pointer write barriers for
// them). out has the batch's physical length and is meaningful only at live
// positions. Like VecEvaluator, an instance owns scratch buffers and is not
// safe for concurrent use; plans hold PredFactory values and instantiate per
// execution.
type VecPredicate func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error

// PredFactory instantiates a per-execution VecPredicate.
type PredFactory func() VecPredicate

// CompilePred translates a predicate expression into a factory of batched
// three-valued evaluators. Comparisons, AND/OR, NOT and IS NULL compile
// natively (with the same masked short-circuit semantics as CompileVec); any
// other expression evaluates through CompileVec and converts with TriOf,
// exactly as the row engine's filter does.
func CompilePred(e algebra.Expr, schema []algebra.Column, r CallResolver) (PredFactory, error) {
	switch x := e.(type) {
	case *algebra.Cmp:
		// Kernelizable side vs. constant fuses arithmetic and compare into
		// one register loop (see vec_kernel.go).
		if pf, ok := compileCmpKernelPred(x, schema, r); ok {
			return pf, nil
		}
		lF, err := CompileVec(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rF, err := CompileVec(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		op := x.Op
		accepts, haveTable := cmpAccepts(op)
		return func() VecPredicate {
			l, rhs := lF(), rF()
			return func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error {
				lv, err := l(ctx, b)
				if err != nil {
					return err
				}
				rv, err := rhs(ctx, b)
				if err != nil {
					return err
				}
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					a, c := lv[p], rv[p]
					if haveTable {
						if cmp, ok := numericThreeWay(a, c); ok {
							if accepts[cmp+1] {
								out[p] = sqltypes.True
							} else {
								out[p] = sqltypes.False
							}
							continue
						}
					}
					out[p] = sqltypes.Cmp(op, a, c)
				}
				return nil
			}
		}, nil

	case *algebra.Logic:
		lF, err := CompilePred(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rF, err := CompilePred(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		isAnd := x.Op == algebra.LogicAnd
		return func() VecPredicate {
			l, rhs := lF(), rF()
			var need []int
			var rt []sqltypes.Tri
			return func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error {
				if err := l(ctx, b, out); err != nil {
					return err
				}
				need = need[:0]
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					lt := out[p]
					// Same short-circuit mask as the row engine: AND skips the
					// right side only when the left is False, OR only when True.
					if isAnd && lt == sqltypes.False {
						continue
					}
					if !isAnd && lt == sqltypes.True {
						continue
					}
					need = append(need, p)
				}
				if len(need) == 0 {
					return nil
				}
				if cap(rt) < len(out) {
					rt = make([]sqltypes.Tri, len(out))
				}
				rt = rt[:len(out)]
				if err := rhs(ctx, b.Narrow(need), rt); err != nil {
					return err
				}
				for _, p := range need {
					if isAnd {
						out[p] = out[p].And(rt[p])
					} else {
						out[p] = out[p].Or(rt[p])
					}
				}
				return nil
			}
		}, nil

	case *algebra.Not:
		innerF, err := CompilePred(x.E, schema, r)
		if err != nil {
			return nil, err
		}
		return func() VecPredicate {
			inner := innerF()
			return func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error {
				if err := inner(ctx, b, out); err != nil {
					return err
				}
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					out[p] = out[p].Not()
				}
				return nil
			}
		}, nil

	case *algebra.IsNull:
		innerF, err := CompileVec(x.E, schema, r)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func() VecPredicate {
			inner := innerF()
			return func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error {
				iv, err := inner(ctx, b)
				if err != nil {
					return err
				}
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					if iv[p].IsNull() != neg {
						out[p] = sqltypes.True
					} else {
						out[p] = sqltypes.False
					}
				}
				return nil
			}
		}, nil

	default:
		evF, err := CompileVec(e, schema, r)
		if err != nil {
			return nil, err
		}
		return func() VecPredicate {
			ev := evF()
			return func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error {
				v, err := ev(ctx, b)
				if err != nil {
					return err
				}
				n := b.Len()
				for i := 0; i < n; i++ {
					p := b.LiveAt(i)
					out[p] = sqltypes.TriOf(v[p])
				}
				return nil
			}
		}, nil
	}
}
