package exec

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

func concatRows(l, r storage.Row) storage.Row {
	out := make(storage.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(n int) storage.Row {
	out := make(storage.Row, n)
	for i := range out {
		out[i] = sqltypes.Null
	}
	return out
}

// joinSchema computes the output schema for a join kind.
func joinSchema(kind algebra.JoinKind, l, r Node) []algebra.Column {
	switch kind {
	case algebra.SemiJoin, algebra.AntiJoin:
		return l.Schema()
	default:
		return append(append([]algebra.Column{}, l.Schema()...), r.Schema()...)
	}
}

// ---------------------------------------------------------------------------
// Nested-loop join
// ---------------------------------------------------------------------------

// NLJoin is a nested-loop join. The right side is re-opened per left row, so
// it supports parameterized right children (e.g. index lookups keyed on the
// left row via correlation parameters set by an enclosing Apply) — but in
// its plain form the right side is materialized once for efficiency.
// Cond is evaluated against the concatenated row; nil means always true.
type NLJoin struct {
	Kind   algebra.JoinKind
	Cond   Evaluator // over concat(L, R) schema
	L, R   Node
	Rescan bool // re-open R per left row instead of materializing
	schema []algebra.Column
}

// NewNLJoin builds a nested-loop join node.
func NewNLJoin(kind algebra.JoinKind, cond Evaluator, l, r Node, rescan bool) *NLJoin {
	return &NLJoin{Kind: kind, Cond: cond, L: l, R: r, Rescan: rescan,
		schema: joinSchema(kind, l, r)}
}

// Schema implements Node.
func (j *NLJoin) Schema() []algebra.Column { return j.schema }

// Open implements Node.
func (j *NLJoin) Open(ctx *Ctx) (Iter, error) {
	li, err := OpenRows(j.L, ctx)
	if err != nil {
		return nil, err
	}
	it := &nlJoinIter{j: j, ctx: ctx, li: li, rWidth: len(j.R.Schema())}
	if !j.Rescan {
		rows, err := Drain(j.R, ctx)
		if err != nil {
			li.Close()
			return nil, err
		}
		it.rRows = rows
		it.haveRRows = true
	}
	return it, nil
}

type nlJoinIter struct {
	j         *NLJoin
	ctx       *Ctx
	li        Iter
	rRows     []storage.Row
	haveRRows bool
	rWidth    int

	left     storage.Row
	rPos     int
	matched  bool
	active   bool
	emitLeft storage.Row // pending left-outer null-extension
}

func (it *nlJoinIter) Next() (storage.Row, bool, error) {
outer:
	for {
		if it.emitLeft != nil {
			row := concatRows(it.emitLeft, nullRow(it.rWidth))
			it.emitLeft = nil
			return row, true, nil
		}
		if !it.active {
			if err := it.ctx.Cancelled(); err != nil {
				return nil, false, err
			}
			l, ok, err := it.li.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.left = l
			it.rPos = 0
			it.matched = false
			it.active = true
			if it.j.Rescan {
				rows, err := Drain(it.j.R, it.ctx)
				if err != nil {
					return nil, false, err
				}
				it.rRows = rows
			}
		}
		for it.rPos < len(it.rRows) {
			r := it.rRows[it.rPos]
			it.rPos++
			match := true
			var joined storage.Row
			if it.j.Cond != nil {
				joined = concatRows(it.left, r)
				v, err := it.j.Cond(it.ctx, joined)
				if err != nil {
					return nil, false, err
				}
				match = sqltypes.TriOf(v) == sqltypes.True
			}
			if !match {
				continue
			}
			it.matched = true
			switch it.j.Kind {
			case algebra.SemiJoin:
				it.active = false
				return it.left, true, nil
			case algebra.AntiJoin:
				it.active = false
				continue outer
			default:
				if joined == nil {
					joined = concatRows(it.left, r)
				}
				return joined, true, nil
			}
		}
		// Right side exhausted for this left row.
		it.active = false
		switch it.j.Kind {
		case algebra.AntiJoin:
			if !it.matched {
				return it.left, true, nil
			}
		case algebra.LeftOuterJoin:
			if !it.matched {
				row := concatRows(it.left, nullRow(it.rWidth))
				return row, true, nil
			}
		}
	}
}

func (it *nlJoinIter) Close() error { return it.li.Close() }

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

// HashJoin is an equi-join that builds a hash table on the right input.
// LKeys and RKeys are the compiled equi-key expressions (over the left and
// right schemas respectively); Residual, when non-nil, is an extra predicate
// over the concatenated row.
type HashJoin struct {
	Kind     algebra.JoinKind
	LKeys    []Evaluator
	RKeys    []Evaluator
	Residual Evaluator
	L, R     Node
	schema   []algebra.Column
}

// NewHashJoin builds a hash join node.
func NewHashJoin(kind algebra.JoinKind, lkeys, rkeys []Evaluator, residual Evaluator, l, r Node) *HashJoin {
	return &HashJoin{Kind: kind, LKeys: lkeys, RKeys: rkeys, Residual: residual,
		L: l, R: r, schema: joinSchema(kind, l, r)}
}

// Schema implements Node.
func (j *HashJoin) Schema() []algebra.Column { return j.schema }

// Open implements Node.
func (j *HashJoin) Open(ctx *Ctx) (Iter, error) {
	// Build phase on the right input. Single integer keys use a dedicated
	// map to avoid per-row key encoding (the common foreign-key case).
	rRows, err := Drain(j.R, ctx)
	if err != nil {
		return nil, err
	}
	table := make(map[string][]storage.Row)
	intTable := make(map[int64][]storage.Row, len(rRows))
	intsOnly := len(j.RKeys) == 1
	keyBuf := make([]sqltypes.Value, len(j.RKeys))
	for _, r := range rRows {
		nullKey := false
		for i, k := range j.RKeys {
			v, err := k(ctx, r)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				nullKey = true
				break
			}
			keyBuf[i] = v
		}
		if nullKey {
			continue // NULL keys never join
		}
		if intsOnly && keyBuf[0].Kind() == sqltypes.KindInt {
			ik := keyBuf[0].Int()
			intTable[ik] = append(intTable[ik], r)
			continue
		}
		if intsOnly {
			intsOnly = false
			var buf []byte
			for ik, rows := range intTable {
				buf = sqltypes.EncodeKey(buf[:0], sqltypes.NewInt(ik))
				table[string(buf)] = rows
			}
			intTable = nil
		}
		k := sqltypes.KeyOf(keyBuf...)
		table[k] = append(table[k], r)
	}
	li, err := OpenRows(j.L, ctx)
	if err != nil {
		return nil, err
	}
	return &hashJoinIter{j: j, ctx: ctx, li: li, table: table, intTable: intTable,
		intsOnly: intsOnly, rWidth: len(j.R.Schema())}, nil
}

type hashJoinIter struct {
	j        *HashJoin
	ctx      *Ctx
	li       Iter
	table    map[string][]storage.Row
	intTable map[int64][]storage.Row
	intsOnly bool
	rWidth   int

	left    storage.Row
	bucket  []storage.Row
	pos     int
	matched bool
	active  bool
}

// lookup finds the build-side bucket for probe key values.
func (it *hashJoinIter) lookup(keys []sqltypes.Value) []storage.Row {
	if it.intsOnly {
		if keys[0].Kind() == sqltypes.KindInt {
			return it.intTable[keys[0].Int()]
		}
		// Numeric cross-kind probe (float against int build keys): fall
		// back to the encoded form against the int table.
		if f, ok := keys[0].AsFloat(); ok && f == float64(int64(f)) {
			return it.intTable[int64(f)]
		}
		return nil
	}
	return it.table[sqltypes.KeyOf(keys...)]
}

func (it *hashJoinIter) Next() (storage.Row, bool, error) {
outer:
	for {
		if !it.active {
			if err := it.ctx.Cancelled(); err != nil {
				return nil, false, err
			}
			l, ok, err := it.li.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.left = l
			it.matched = false
			it.pos = 0
			it.active = true
			it.bucket = nil
			nullKey := false
			keys := make([]sqltypes.Value, len(it.j.LKeys))
			for i, k := range it.j.LKeys {
				v, err := k(it.ctx, l)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() {
					nullKey = true
					break
				}
				keys[i] = v
			}
			if !nullKey {
				it.bucket = it.lookup(keys)
			}
		}
		for it.pos < len(it.bucket) {
			r := it.bucket[it.pos]
			it.pos++
			joined := concatRows(it.left, r)
			if it.j.Residual != nil {
				v, err := it.j.Residual(it.ctx, joined)
				if err != nil {
					return nil, false, err
				}
				if sqltypes.TriOf(v) != sqltypes.True {
					continue
				}
			}
			it.matched = true
			switch it.j.Kind {
			case algebra.SemiJoin:
				it.active = false
				return it.left, true, nil
			case algebra.AntiJoin:
				it.active = false
				continue outer
			default:
				return joined, true, nil
			}
		}
		it.active = false
		switch it.j.Kind {
		case algebra.AntiJoin:
			if !it.matched {
				return it.left, true, nil
			}
		case algebra.LeftOuterJoin:
			if !it.matched {
				return concatRows(it.left, nullRow(it.rWidth)), true, nil
			}
		}
	}
}

func (it *hashJoinIter) Close() error { return it.li.Close() }

// ---------------------------------------------------------------------------
// Merge join
// ---------------------------------------------------------------------------

// MergeJoin is an inner equi-join over inputs sorted on the key expressions.
// It sorts both inputs at open time (a sort-merge join); the planner uses it
// for ablation benchmarks against the hash join.
type MergeJoin struct {
	LKey, RKey Evaluator
	L, R       Node
	schema     []algebra.Column
}

// NewMergeJoin builds a sort-merge inner join on a single equi-key.
func NewMergeJoin(lkey, rkey Evaluator, l, r Node) *MergeJoin {
	return &MergeJoin{LKey: lkey, RKey: rkey, L: l, R: r,
		schema: joinSchema(algebra.InnerJoin, l, r)}
}

// Schema implements Node.
func (j *MergeJoin) Schema() []algebra.Column { return j.schema }

// Open implements Node.
func (j *MergeJoin) Open(ctx *Ctx) (Iter, error) {
	lRows, err := Drain(&Sort{Keys: []SortSpec{{Key: j.LKey}}, Child: j.L}, ctx)
	if err != nil {
		return nil, err
	}
	rRows, err := Drain(&Sort{Keys: []SortSpec{{Key: j.RKey}}, Child: j.R}, ctx)
	if err != nil {
		return nil, err
	}
	var out []storage.Row
	i, k := 0, 0
	for i < len(lRows) && k < len(rRows) {
		lv, err := j.LKey(ctx, lRows[i])
		if err != nil {
			return nil, err
		}
		rv, err := j.RKey(ctx, rRows[k])
		if err != nil {
			return nil, err
		}
		if lv.IsNull() {
			i++
			continue
		}
		if rv.IsNull() {
			k++
			continue
		}
		c := sqltypes.TotalCompare(lv, rv)
		switch {
		case c < 0:
			i++
		case c > 0:
			k++
		default:
			// Emit the cross product of the equal runs.
			kEnd := k
			for kEnd < len(rRows) {
				rv2, err := j.RKey(ctx, rRows[kEnd])
				if err != nil {
					return nil, err
				}
				if rv2.IsNull() || sqltypes.TotalCompare(lv, rv2) != 0 {
					break
				}
				kEnd++
			}
			for ; i < len(lRows); i++ {
				lv2, err := j.LKey(ctx, lRows[i])
				if err != nil {
					return nil, err
				}
				if lv2.IsNull() || sqltypes.TotalCompare(lv2, lv) != 0 {
					break
				}
				for x := k; x < kEnd; x++ {
					out = append(out, concatRows(lRows[i], rRows[x]))
				}
			}
			k = kEnd
		}
	}
	return &sliceIter{rows: out}, nil
}
