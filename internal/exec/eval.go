package exec

import (
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Evaluator is a compiled scalar expression: evaluated against the current
// input row and execution context.
type Evaluator func(ctx *Ctx, row storage.Row) (sqltypes.Value, error)

// CallResolver resolves scalar function calls that are not builtins —
// user-defined functions executed by the interpreter — and compiles
// relational subexpressions used inside scalar expressions.
type CallResolver interface {
	// ResolveScalarCall returns a function invoking the named UDF, or ok
	// false when the name is unknown.
	ResolveScalarCall(name string, argc int) (func(ctx *Ctx, args []sqltypes.Value) (sqltypes.Value, error), bool)
	// BuildSubplan compiles a relational expression used as a scalar
	// subquery inside an expression compiled against the given outer
	// schema. The returned bindings say which outer-row columns must be
	// published as parameters before each evaluation (correlation).
	BuildSubplan(rel algebra.Rel, outer []algebra.Column) (Node, []CorrBinding, error)
}

// Compile translates an algebra expression into an Evaluator against the
// given input schema. Column references not found in the schema are compile
// errors (correlation must be rewritten to parameters before compilation);
// parameter references resolve dynamically through the context.
func Compile(e algebra.Expr, schema []algebra.Column, r CallResolver) (Evaluator, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		for i, c := range schema {
			if c.Matches(x.Qual, x.Name) {
				idx := i
				return func(_ *Ctx, row storage.Row) (sqltypes.Value, error) {
					if idx >= len(row) {
						return sqltypes.Null, Errorf("row too short for column %s", c)
					}
					return row[idx], nil
				}, nil
			}
		}
		return nil, Errorf("unresolved column %s", x)

	case *algebra.ParamRef:
		name := x.Name
		return func(ctx *Ctx, _ storage.Row) (sqltypes.Value, error) {
			if v, ok := ctx.Get(name); ok {
				return v, nil
			}
			return sqltypes.Null, Errorf("unbound parameter :%s", name)
		}, nil

	case *algebra.Const:
		v := x.Val
		return func(*Ctx, storage.Row) (sqltypes.Value, error) { return v, nil }, nil

	case *algebra.Arith:
		l, err := Compile(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rhs, err := Compile(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := rhs(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.Arith(op, lv, rv)
		}, nil

	case *algebra.Cmp:
		l, err := Compile(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rhs, err := Compile(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := rhs(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.TriValue(sqltypes.Cmp(op, lv, rv)), nil
		}, nil

	case *algebra.Logic:
		l, err := Compile(x.L, schema, r)
		if err != nil {
			return nil, err
		}
		rhs, err := Compile(x.R, schema, r)
		if err != nil {
			return nil, err
		}
		isAnd := x.Op == algebra.LogicAnd
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			lt := sqltypes.TriOf(lv)
			// Short circuit.
			if isAnd && lt == sqltypes.False {
				return sqltypes.NewBool(false), nil
			}
			if !isAnd && lt == sqltypes.True {
				return sqltypes.NewBool(true), nil
			}
			rv, err := rhs(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rt := sqltypes.TriOf(rv)
			if isAnd {
				return sqltypes.TriValue(lt.And(rt)), nil
			}
			return sqltypes.TriValue(lt.Or(rt)), nil
		}, nil

	case *algebra.Not:
		inner, err := Compile(x.E, schema, r)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			v, err := inner(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.TriValue(sqltypes.TriOf(v).Not()), nil
		}, nil

	case *algebra.IsNull:
		inner, err := Compile(x.E, schema, r)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			v, err := inner(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(v.IsNull() != neg), nil
		}, nil

	case *algebra.Case:
		type arm struct{ cond, then Evaluator }
		arms := make([]arm, len(x.Whens))
		for i, w := range x.Whens {
			c, err := Compile(w.Cond, schema, r)
			if err != nil {
				return nil, err
			}
			t, err := Compile(w.Then, schema, r)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{c, t}
		}
		var elseEv Evaluator
		if x.Else != nil {
			var err error
			elseEv, err = Compile(x.Else, schema, r)
			if err != nil {
				return nil, err
			}
		}
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			for _, a := range arms {
				c, err := a.cond(ctx, row)
				if err != nil {
					return sqltypes.Null, err
				}
				if sqltypes.TriOf(c) == sqltypes.True {
					return a.then(ctx, row)
				}
			}
			if elseEv != nil {
				return elseEv(ctx, row)
			}
			return sqltypes.Null, nil
		}, nil

	case *algebra.Call:
		args := make([]Evaluator, len(x.Args))
		for i, a := range x.Args {
			ev, err := Compile(a, schema, r)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		evalArgs := func(ctx *Ctx, row storage.Row) ([]sqltypes.Value, error) {
			vals := make([]sqltypes.Value, len(args))
			for i, a := range args {
				v, err := a(ctx, row)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return vals, nil
		}
		if fn, ok := builtinScalar(strings.ToLower(x.Name), len(args)); ok {
			return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
				vals, err := evalArgs(ctx, row)
				if err != nil {
					return sqltypes.Null, err
				}
				return fn(vals)
			}, nil
		}
		if r != nil {
			if udf, ok := r.ResolveScalarCall(x.Name, len(args)); ok {
				return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
					vals, err := evalArgs(ctx, row)
					if err != nil {
						return sqltypes.Null, err
					}
					return udf(ctx, vals)
				}, nil
			}
		}
		return nil, Errorf("unknown function %s/%d", x.Name, len(args))

	case *algebra.Subquery:
		if r == nil {
			return nil, Errorf("scalar subquery needs a plan builder")
		}
		sub, corr, err := r.BuildSubplan(x.Rel, schema)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema()) != 1 {
			return nil, Errorf("scalar subquery must produce one column, got %d", len(sub.Schema()))
		}
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			ctx.Push()
			defer ctx.Pop()
			for _, cb := range corr {
				ctx.Set(cb.Param, row[cb.Col])
			}
			rows, err := Drain(sub, ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			switch len(rows) {
			case 0:
				return sqltypes.Null, nil
			case 1:
				return rows[0][0], nil
			default:
				return sqltypes.Null, Errorf("scalar subquery returned %d rows", len(rows))
			}
		}, nil

	case *algebra.Exists:
		if r == nil {
			return nil, Errorf("EXISTS needs a plan builder")
		}
		sub, corr, err := r.BuildSubplan(x.Rel, schema)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(ctx *Ctx, row storage.Row) (sqltypes.Value, error) {
			ctx.Push()
			defer ctx.Pop()
			for _, cb := range corr {
				ctx.Set(cb.Param, row[cb.Col])
			}
			it, err := OpenRows(sub, ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			defer it.Close()
			_, ok, err := it.Next()
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(ok != neg), nil
		}, nil
	}
	return nil, Errorf("cannot compile expression %T", e)
}

// builtinScalar returns the implementation of a builtin scalar function.
func builtinScalar(name string, argc int) (func([]sqltypes.Value) (sqltypes.Value, error), bool) {
	switch name {
	case "abs":
		if argc != 1 {
			return nil, false
		}
		return func(a []sqltypes.Value) (sqltypes.Value, error) {
			if a[0].IsNull() {
				return sqltypes.Null, nil
			}
			switch a[0].Kind() {
			case sqltypes.KindInt:
				v := a[0].Int()
				if v < 0 {
					v = -v
				}
				return sqltypes.NewInt(v), nil
			case sqltypes.KindFloat:
				v := a[0].Float()
				if v < 0 {
					v = -v
				}
				return sqltypes.NewFloat(v), nil
			}
			return sqltypes.Null, Errorf("abs of non-numeric")
		}, true
	case "length":
		if argc != 1 {
			return nil, false
		}
		return func(a []sqltypes.Value) (sqltypes.Value, error) {
			if a[0].IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewInt(int64(len(a[0].Display()))), nil
		}, true
	case "upper", "lower":
		if argc != 1 {
			return nil, false
		}
		up := name == "upper"
		return func(a []sqltypes.Value) (sqltypes.Value, error) {
			if a[0].IsNull() {
				return sqltypes.Null, nil
			}
			s := a[0].Display()
			if up {
				return sqltypes.NewString(strings.ToUpper(s)), nil
			}
			return sqltypes.NewString(strings.ToLower(s)), nil
		}, true
	case "concat":
		return func(a []sqltypes.Value) (sqltypes.Value, error) {
			out := sqltypes.NewString("")
			for _, v := range a {
				out = sqltypes.Concat(out, v)
				if out.IsNull() {
					return sqltypes.Null, nil
				}
			}
			return out, nil
		}, true
	case "coalesce":
		return func(a []sqltypes.Value) (sqltypes.Value, error) {
			for _, v := range a {
				if !v.IsNull() {
					return v, nil
				}
			}
			return sqltypes.Null, nil
		}, true
	case "ifnull", "nvl":
		if argc != 2 {
			return nil, false
		}
		return func(a []sqltypes.Value) (sqltypes.Value, error) {
			if a[0].IsNull() {
				return a[1], nil
			}
			return a[0], nil
		}, true
	}
	return nil, false
}

// CompileAll compiles a list of expressions against the same schema.
func CompileAll(exprs []algebra.Expr, schema []algebra.Column, r CallResolver) ([]Evaluator, error) {
	out := make([]Evaluator, len(exprs))
	for i, e := range exprs {
		ev, err := Compile(e, schema, r)
		if err != nil {
			return nil, fmt.Errorf("expr %d (%s): %w", i, e, err)
		}
		out[i] = ev
	}
	return out, nil
}
