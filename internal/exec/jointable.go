package exec

import (
	"hash/fnv"
	"sync"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// joinTable is the build side of a vectorized hash join. It is partitioned
// by key hash so a parallel build can populate the partitions from one
// worker each without locking; a single-partition table is the ordinary
// serial build. Single integer keys use a dedicated map per partition (the
// common foreign-key case), mirroring the row hash join's fast path.
// After the build completes the table is read-only, so any number of
// concurrent probe workers may share it.
type joinTable struct {
	parts    []joinPart
	intsOnly bool
}

type joinPart struct {
	table    map[string][]storage.Row
	intTable map[int64][]storage.Row
}

// partOfInt maps an integer key to its partition (a multiplicative mix so
// sequential keys spread evenly).
func partOfInt(ik int64, parts int) int {
	h := uint64(ik) * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(parts))
}

// partOfKey maps an encoded composite key to its partition.
func partOfKey(k string, parts int) int {
	h := fnv.New64a()
	h.Write([]byte(k))
	return int(h.Sum64() % uint64(parts))
}

// lookup finds the bucket for probe key values (all non-NULL). Integer
// tables accept exact-valued float probes, like the row join.
func (jt *joinTable) lookup(keys []sqltypes.Value) []storage.Row {
	if jt.intsOnly {
		var ik int64
		if keys[0].Kind() == sqltypes.KindInt {
			ik = keys[0].Int()
		} else if f, ok := keys[0].AsFloat(); ok && f == float64(int64(f)) {
			ik = int64(f)
		} else {
			return nil
		}
		if len(jt.parts) == 1 {
			return jt.parts[0].intTable[ik]
		}
		return jt.parts[partOfInt(ik, len(jt.parts))].intTable[ik]
	}
	k := sqltypes.KeyOf(keys...)
	if len(jt.parts) == 1 {
		return jt.parts[0].table[k]
	}
	return jt.parts[partOfKey(k, len(jt.parts))].table[k]
}

// buildEntry is one build-side row with its evaluated join key.
type buildEntry struct {
	isInt bool
	ik    int64
	key   string // encoded composite key when !isInt
	row   storage.Row
}

// buildJoinTable drains a build-side plan, evaluates its key expressions
// batch-at-a-time, and constructs the hash table with the given partition
// count. parts == 1 inserts directly while draining (no intermediate
// allocation — the serial hash join's build). With parts > 1 the drain
// collects keyed entries, one serial pass buckets them by partition hash
// (each key hashed exactly once), and then one goroutine per partition
// populates its map from its own bucket, in build order.
func buildJoinTable(ctx *Ctx, build Node, keyFs []VecFactory, parts int) (*joinTable, error) {
	if parts <= 1 {
		return buildJoinTableSerial(ctx, build, keyFs)
	}
	ri, err := OpenBatches(build, ctx)
	if err != nil {
		return nil, err
	}
	defer ri.Close()
	rkeys := Instantiate(keyFs)
	keyVecs := make([][]sqltypes.Value, len(rkeys))
	keyBuf := make([]sqltypes.Value, len(rkeys))
	intsOnly := len(rkeys) == 1
	var entries []buildEntry
	for {
		if err := ctx.Cancelled(); err != nil {
			return nil, err
		}
		b, ok, err := ri.NextBatch(DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i, k := range rkeys {
			v, err := k(ctx, b)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			p := b.LiveAt(i)
			nullKey := false
			for c := range keyVecs {
				v := keyVecs[c][p]
				if v.IsNull() {
					nullKey = true
					break
				}
				keyBuf[c] = v
			}
			if nullKey {
				continue // NULL keys never join
			}
			e := buildEntry{row: b.Row(p)}
			if intsOnly && keyBuf[0].Kind() == sqltypes.KindInt {
				e.isInt = true
				e.ik = keyBuf[0].Int()
			} else {
				intsOnly = false
				e.key = sqltypes.KeyOf(keyBuf...)
			}
			entries = append(entries, e)
		}
	}

	// Bucket by partition in one pass (the key kind is only final now, so
	// integer entries collected before a mixed-kind downgrade normalize
	// here), then populate the partitions concurrently.
	jt := &joinTable{parts: make([]joinPart, parts), intsOnly: intsOnly}
	byPart := make([][]buildEntry, parts)
	var kb []byte
	for i := range entries {
		e := &entries[i]
		var w int
		if intsOnly {
			w = partOfInt(e.ik, parts)
		} else {
			if e.isInt {
				kb = sqltypes.EncodeKey(kb[:0], sqltypes.NewInt(e.ik))
				e.key = string(kb)
				e.isInt = false
			}
			w = partOfKey(e.key, parts)
		}
		byPart[w] = append(byPart[w], *e)
	}
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &jt.parts[w]
			if intsOnly {
				p.intTable = make(map[int64][]storage.Row, len(byPart[w]))
				for _, e := range byPart[w] {
					p.intTable[e.ik] = append(p.intTable[e.ik], e.row)
				}
				return
			}
			p.table = make(map[string][]storage.Row, len(byPart[w]))
			for _, e := range byPart[w] {
				p.table[e.key] = append(p.table[e.key], e.row)
			}
		}(w)
	}
	wg.Wait()
	return jt, nil
}

// buildJoinTableSerial inserts rows as they drain, with the dynamic
// integer-to-encoded-key downgrade on the first mixed-kind key (mirroring
// the row hash join).
func buildJoinTableSerial(ctx *Ctx, build Node, keyFs []VecFactory) (*joinTable, error) {
	ri, err := OpenBatches(build, ctx)
	if err != nil {
		return nil, err
	}
	defer ri.Close()
	rkeys := Instantiate(keyFs)
	keyVecs := make([][]sqltypes.Value, len(rkeys))
	keyBuf := make([]sqltypes.Value, len(rkeys))
	intsOnly := len(rkeys) == 1
	table := make(map[string][]storage.Row)
	intTable := make(map[int64][]storage.Row)
	for {
		if err := ctx.Cancelled(); err != nil {
			return nil, err
		}
		b, ok, err := ri.NextBatch(DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i, k := range rkeys {
			v, err := k(ctx, b)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			p := b.LiveAt(i)
			nullKey := false
			for c := range keyVecs {
				v := keyVecs[c][p]
				if v.IsNull() {
					nullKey = true
					break
				}
				keyBuf[c] = v
			}
			if nullKey {
				continue // NULL keys never join
			}
			row := b.Row(p)
			if intsOnly && keyBuf[0].Kind() == sqltypes.KindInt {
				ik := keyBuf[0].Int()
				intTable[ik] = append(intTable[ik], row)
				continue
			}
			if intsOnly {
				intsOnly = false
				var kb []byte
				for ik, rows := range intTable {
					kb = sqltypes.EncodeKey(kb[:0], sqltypes.NewInt(ik))
					table[string(kb)] = rows
				}
				intTable = nil
			}
			k := sqltypes.KeyOf(keyBuf...)
			table[k] = append(table[k], row)
		}
	}
	if intsOnly {
		return &joinTable{parts: []joinPart{{intTable: intTable}}, intsOnly: true}, nil
	}
	return &joinTable{parts: []joinPart{{table: table}}}, nil
}
