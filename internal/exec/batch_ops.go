package exec

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// ---------------------------------------------------------------------------
// BatchScan
// ---------------------------------------------------------------------------

// BatchScan reads a base table in column-major chunks.
type BatchScan struct {
	Tab    *storage.Table
	schema []algebra.Column
}

// NewBatchScan builds a vectorized scan over a table.
func NewBatchScan(tab *storage.Table, schema []algebra.Column) *BatchScan {
	return &BatchScan{Tab: tab, schema: schema}
}

// Schema implements Node.
func (s *BatchScan) Schema() []algebra.Column { return s.schema }

// Open implements Node.
func (s *BatchScan) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(s, ctx) }

// OpenBatch implements BatchNode.
func (s *BatchScan) OpenBatch(ctx *Ctx) (BatchIter, error) {
	ver, overlay := ctx.TableVersion(s.Tab)
	storage.NoteZeroCopyScan()
	return &batchScanIter{segs: ver.Segments(), overlay: overlay, width: len(s.schema), ctx: ctx}, nil
}

// batchScanIter serves zero-copy batches straight out of a version's column
// segments: the returned batch's column vectors alias storage (bounded so a
// batch never spans a segment), with no per-batch pivot or copy. Uncommitted
// transaction-overlay rows, when present, follow the segments through a
// small pivot buffer.
type batchScanIter struct {
	segs    []*storage.Segment
	seg     int // current segment index
	off     int // next row offset within the current segment
	overlay []storage.Row
	ovPos   int
	width   int
	out     Batch  // reused batch header; Cols alias segment storage
	buf     *Batch // pivot buffer, only for overlay rows
	ctx     *Ctx
}

func (s *batchScanIter) NextBatch(max int) (*Batch, bool, error) {
	if err := s.ctx.Cancelled(); err != nil {
		return nil, false, err
	}
	for s.seg < len(s.segs) {
		sg := s.segs[s.seg]
		if s.off >= sg.Len() {
			s.seg++
			s.off = 0
			continue
		}
		end := s.off + max
		if end > sg.Len() {
			end = sg.Len()
		}
		if s.out.Cols == nil {
			s.out.Cols = make([][]sqltypes.Value, s.width)
		}
		for c := 0; c < s.width; c++ {
			s.out.Cols[c] = sg.Col(c)[s.off:end]
		}
		s.out.Sel = nil
		s.out.n = end - s.off
		s.off = end
		return &s.out, true, nil
	}
	if s.ovPos >= len(s.overlay) {
		return nil, false, nil
	}
	end := s.ovPos + max
	if end > len(s.overlay) {
		end = len(s.overlay)
	}
	if s.buf == nil {
		s.buf = NewBatch(s.width, max)
	}
	b := s.buf
	b.Sel = nil
	b.n = end - s.ovPos
	chunk := s.overlay[s.ovPos:end]
	for c := 0; c < s.width; c++ {
		col := b.Cols[c][:0]
		for _, r := range chunk {
			col = append(col, r[c])
		}
		b.Cols[c] = col
	}
	s.ovPos = end
	return b, true, nil
}

func (s *batchScanIter) Close() error { return nil }

// rowFeedIter serves an already-materialized row slice as batches through a
// reused pivot buffer; it feeds group-by results back into batch parents.
type rowFeedIter struct {
	rows  []storage.Row
	pos   int
	width int
	buf   *Batch
}

func (s *rowFeedIter) NextBatch(max int) (*Batch, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	end := s.pos + max
	if end > len(s.rows) {
		end = len(s.rows)
	}
	if s.buf == nil {
		s.buf = NewBatch(s.width, max)
	}
	b := s.buf
	b.Sel = nil
	b.n = end - s.pos
	chunk := s.rows[s.pos:end]
	for c := 0; c < s.width; c++ {
		col := b.Cols[c][:0]
		for _, r := range chunk {
			col = append(col, r[c])
		}
		b.Cols[c] = col
	}
	s.pos = end
	return b, true, nil
}

func (s *rowFeedIter) Close() error { return nil }

// ---------------------------------------------------------------------------
// BatchFilter
// ---------------------------------------------------------------------------

// BatchFilter keeps the rows whose predicate evaluates to TRUE, refining the
// selection vector instead of copying data.
type BatchFilter struct {
	Pred  PredFactory
	Child Node
}

// Schema implements Node.
func (f *BatchFilter) Schema() []algebra.Column { return f.Child.Schema() }

// Open implements Node.
func (f *BatchFilter) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(f, ctx) }

// OpenBatch implements BatchNode.
func (f *BatchFilter) OpenBatch(ctx *Ctx) (BatchIter, error) {
	in, err := OpenBatches(f.Child, ctx)
	if err != nil {
		return nil, err
	}
	return &batchFilterIter{pred: f.Pred(), in: in, ctx: ctx}, nil
}

type batchFilterIter struct {
	pred VecPredicate
	in   BatchIter
	ctx  *Ctx
	sel  []int
	tri  []sqltypes.Tri
}

func (f *batchFilterIter) NextBatch(max int) (*Batch, bool, error) {
	for {
		if err := f.ctx.Cancelled(); err != nil {
			return nil, false, err
		}
		b, ok, err := f.in.NextBatch(max)
		if err != nil || !ok {
			return nil, false, err
		}
		if cap(f.tri) < b.Physical() {
			f.tri = make([]sqltypes.Tri, b.Physical())
		}
		f.tri = f.tri[:b.Physical()]
		if err := f.pred(f.ctx, b, f.tri); err != nil {
			return nil, false, err
		}
		f.sel = f.sel[:0]
		n := b.Len()
		for i := 0; i < n; i++ {
			p := b.LiveAt(i)
			if f.tri[p] == sqltypes.True {
				f.sel = append(f.sel, p)
			}
		}
		if len(f.sel) == 0 {
			continue // fully filtered batch; pull the next one
		}
		out := b.Narrow(f.sel)
		return out, true, nil
	}
}

func (f *batchFilterIter) Close() error { return f.in.Close() }

// ---------------------------------------------------------------------------
// BatchProject
// ---------------------------------------------------------------------------

// BatchProject computes output columns over whole batches. Expression
// results stay aligned with the input batch's physical positions, so the
// selection vector carries over without copying.
type BatchProject struct {
	Exprs  []VecFactory
	Dedup  bool
	Child  Node
	schema []algebra.Column
}

// NewBatchProject builds a vectorized projection node.
func NewBatchProject(exprs []VecFactory, dedup bool, child Node, schema []algebra.Column) *BatchProject {
	return &BatchProject{Exprs: exprs, Dedup: dedup, Child: child, schema: schema}
}

// Schema implements Node.
func (p *BatchProject) Schema() []algebra.Column { return p.schema }

// Open implements Node.
func (p *BatchProject) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(p, ctx) }

// OpenBatch implements BatchNode.
func (p *BatchProject) OpenBatch(ctx *Ctx) (BatchIter, error) {
	in, err := OpenBatches(p.Child, ctx)
	if err != nil {
		return nil, err
	}
	pi := &batchProjectIter{exprs: Instantiate(p.Exprs), in: in, ctx: ctx}
	if p.Dedup {
		pi.seen = map[string]bool{}
	}
	return pi, nil
}

type batchProjectIter struct {
	exprs []VecEvaluator
	in    BatchIter
	ctx   *Ctx
	seen  map[string]bool // non-nil for DISTINCT
	out   Batch
	sel   []int
	key   []sqltypes.Value
}

func (p *batchProjectIter) NextBatch(max int) (*Batch, bool, error) {
	for {
		b, ok, err := p.in.NextBatch(max)
		if err != nil || !ok {
			return nil, false, err
		}
		if p.out.Cols == nil {
			p.out.Cols = make([][]sqltypes.Value, len(p.exprs))
		}
		for i, e := range p.exprs {
			v, err := e(p.ctx, b)
			if err != nil {
				return nil, false, err
			}
			p.out.Cols[i] = v
		}
		p.out.n = b.Physical()
		p.out.Sel = b.Sel
		if p.seen != nil {
			if cap(p.key) < len(p.exprs) {
				p.key = make([]sqltypes.Value, len(p.exprs))
			}
			key := p.key[:len(p.exprs)]
			p.sel = p.sel[:0]
			n := p.out.Len()
			for i := 0; i < n; i++ {
				pos := p.out.LiveAt(i)
				for j, c := range p.out.Cols {
					key[j] = c[pos]
				}
				k := sqltypes.KeyOf(key...)
				if p.seen[k] {
					continue
				}
				p.seen[k] = true
				p.sel = append(p.sel, pos)
			}
			if len(p.sel) == 0 {
				continue
			}
			p.out.Sel = p.sel
		}
		p.ctx.Counters.RowsProcessed += int64(p.out.Len())
		return &p.out, true, nil
	}
}

func (p *batchProjectIter) Close() error { return p.in.Close() }

// ---------------------------------------------------------------------------
// BatchLimit
// ---------------------------------------------------------------------------

// BatchLimit passes the first N live rows, truncating the batch that crosses
// the limit.
type BatchLimit struct {
	N     int64
	Child Node
}

// Schema implements Node.
func (l *BatchLimit) Schema() []algebra.Column { return l.Child.Schema() }

// Open implements Node.
func (l *BatchLimit) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(l, ctx) }

// OpenBatch implements BatchNode.
func (l *BatchLimit) OpenBatch(ctx *Ctx) (BatchIter, error) {
	in, err := OpenBatches(l.Child, ctx)
	if err != nil {
		return nil, err
	}
	return &batchLimitIter{remaining: l.N, in: in}, nil
}

type batchLimitIter struct {
	remaining int64
	in        BatchIter
	sel       []int
}

func (l *batchLimitIter) NextBatch(max int) (*Batch, bool, error) {
	if l.remaining <= 0 {
		return nil, false, nil
	}
	if int64(max) > l.remaining {
		max = int(l.remaining)
	}
	b, ok, err := l.in.NextBatch(max)
	if err != nil || !ok {
		return nil, false, err
	}
	live := int64(b.Len())
	if live <= l.remaining {
		l.remaining -= live
		return b, true, nil
	}
	// The limit falls mid-batch: keep only the first remaining live rows.
	l.sel = l.sel[:0]
	for i := int64(0); i < l.remaining; i++ {
		l.sel = append(l.sel, b.LiveAt(int(i)))
	}
	l.remaining = 0
	return b.Narrow(l.sel), true, nil
}

func (l *batchLimitIter) Close() error { return l.in.Close() }

// ---------------------------------------------------------------------------
// BatchHashJoin
// ---------------------------------------------------------------------------

// BatchHashJoin is the vectorized hash join: build- and probe-side key
// expressions evaluate batch-at-a-time, and matches are emitted into output
// batches in left-row order (identical to the row hash join's order). The
// residual predicate, when present, is evaluated per candidate row so that
// outer/semi/anti match bookkeeping stays exact.
type BatchHashJoin struct {
	Kind     algebra.JoinKind
	LKeys    []VecFactory
	RKeys    []VecFactory
	Residual Evaluator // over concat(L, R); nil when none
	L, R     Node
	schema   []algebra.Column
}

// NewBatchHashJoin builds a vectorized hash join node.
func NewBatchHashJoin(kind algebra.JoinKind, lkeys, rkeys []VecFactory, residual Evaluator, l, r Node) *BatchHashJoin {
	return &BatchHashJoin{Kind: kind, LKeys: lkeys, RKeys: rkeys, Residual: residual,
		L: l, R: r, schema: joinSchema(kind, l, r)}
}

// Schema implements Node.
func (j *BatchHashJoin) Schema() []algebra.Column { return j.schema }

// Open implements Node.
func (j *BatchHashJoin) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(j, ctx) }

// OpenBatch implements BatchNode.
func (j *BatchHashJoin) OpenBatch(ctx *Ctx) (BatchIter, error) {
	table, err := buildJoinTable(ctx, j.R, j.RKeys, 1)
	if err != nil {
		return nil, err
	}
	li, err := OpenBatches(j.L, ctx)
	if err != nil {
		return nil, err
	}
	return newBatchHashJoinIter(j, ctx, li, table), nil
}

// newBatchHashJoinIter wires a probe iterator over an already-built join
// table (shared by the serial path and the per-worker parallel probes).
func newBatchHashJoinIter(j *BatchHashJoin, ctx *Ctx, li BatchIter, table *joinTable) *batchHashJoinIter {
	return &batchHashJoinIter{j: j, ctx: ctx, li: li, table: table,
		lkeys: Instantiate(j.LKeys), rWidth: len(j.R.Schema())}
}

type batchHashJoinIter struct {
	j      *BatchHashJoin
	ctx    *Ctx
	li     BatchIter
	lkeys  []VecEvaluator
	table  *joinTable
	rWidth int

	left    *Batch             // current probe batch (nil when exhausted)
	keyVecs [][]sqltypes.Value // probe key vectors over left
	pos     int                // next live index in left
	out     *Batch
	keyBuf  []sqltypes.Value

	// In-progress probe row, carried across NextBatch calls so a hot build
	// key (bucket larger than the remaining output budget) never overflows
	// the requested batch size.
	pend        []storage.Row // bucket being emitted; meaningful when pendActive
	pendIdx     int           // next bucket position
	pendLeft    storage.Row   // the probe row the bucket belongs to
	pendMatched bool          // a residual-accepted match was seen
	pendActive  bool
}

func (it *batchHashJoinIter) appendJoined(out *Batch, l, r storage.Row) {
	for c := 0; c < len(l); c++ {
		out.Cols[c] = append(out.Cols[c], l[c])
	}
	for c := 0; c < it.rWidth; c++ {
		out.Cols[len(l)+c] = append(out.Cols[len(l)+c], r[c])
	}
	out.n++
}

func (it *batchHashJoinIter) appendLeft(out *Batch, l storage.Row) {
	for c := 0; c < len(l); c++ {
		out.Cols[c] = append(out.Cols[c], l[c])
	}
	if kind := it.j.Kind; kind != algebra.SemiJoin && kind != algebra.AntiJoin {
		for c := 0; c < it.rWidth; c++ {
			out.Cols[len(l)+c] = append(out.Cols[len(l)+c], sqltypes.Null)
		}
	}
	out.n++
}

// emitPending drains the in-progress probe row — the bucket cursor plus the
// trailing unmatched emission — into out, stopping as soon as out reaches
// max live rows. full=true means out filled up before the probe row
// completed; the cursor survives for the next call.
func (it *batchHashJoinIter) emitPending(out *Batch, max int) (full bool, err error) {
	j := it.j
	for it.pendIdx < len(it.pend) {
		if out.n >= max {
			return true, nil
		}
		r := it.pend[it.pendIdx]
		it.pendIdx++
		if j.Residual != nil {
			joined := concatRows(it.pendLeft, r)
			v, err := j.Residual(it.ctx, joined)
			if err != nil {
				return false, err
			}
			if sqltypes.TriOf(v) != sqltypes.True {
				continue
			}
		}
		it.pendMatched = true
		switch j.Kind {
		case algebra.SemiJoin:
			it.appendLeft(out, it.pendLeft)
			it.pendIdx = len(it.pend) // the first match decides
		case algebra.AntiJoin:
			it.pendIdx = len(it.pend) // no emission on match
		default:
			it.appendJoined(out, it.pendLeft, r)
		}
	}
	if !it.pendMatched && (j.Kind == algebra.AntiJoin || j.Kind == algebra.LeftOuterJoin) {
		if out.n >= max {
			return true, nil
		}
		it.appendLeft(out, it.pendLeft)
	}
	it.pendActive = false
	it.pend, it.pendLeft = nil, nil
	return false, nil
}

func (it *batchHashJoinIter) NextBatch(max int) (*Batch, bool, error) {
	if it.out == nil {
		it.out = NewBatch(len(it.j.schema), max)
		it.keyBuf = make([]sqltypes.Value, len(it.lkeys))
	}
	out := it.out
	out.Sel = nil
	out.n = 0
	for i := range out.Cols {
		out.Cols[i] = out.Cols[i][:0]
	}
	for {
		if it.pendActive {
			full, err := it.emitPending(out, max)
			if err != nil {
				return nil, false, err
			}
			if full {
				return out, true, nil
			}
		}
		if it.left == nil || it.pos >= it.left.Len() {
			if out.n >= max {
				return out, true, nil
			}
			b, ok, err := it.li.NextBatch(max)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				it.left = nil
				if out.n > 0 {
					return out, true, nil
				}
				return nil, false, nil
			}
			if it.keyVecs == nil {
				it.keyVecs = make([][]sqltypes.Value, len(it.lkeys))
			}
			for i, k := range it.lkeys {
				v, err := k(it.ctx, b)
				if err != nil {
					return nil, false, err
				}
				it.keyVecs[i] = v
			}
			it.left, it.pos = b, 0
		}
		for it.pos < it.left.Len() {
			if out.n >= max {
				return out, true, nil
			}
			p := it.left.LiveAt(it.pos)
			it.pos++
			nullKey := false
			for c := range it.keyVecs {
				v := it.keyVecs[c][p]
				if v.IsNull() {
					nullKey = true
					break
				}
				it.keyBuf[c] = v
			}
			it.pendActive = true
			it.pendIdx = 0
			it.pendMatched = false
			it.pendLeft = it.left.Row(p)
			if nullKey {
				it.pend = nil // NULL keys never join
			} else {
				it.pend = it.table.lookup(it.keyBuf)
			}
			full, err := it.emitPending(out, max)
			if err != nil {
				return nil, false, err
			}
			if full {
				return out, true, nil
			}
		}
	}
}

func (it *batchHashJoinIter) Close() error { return it.li.Close() }

// ---------------------------------------------------------------------------
// BatchScalarAgg
// ---------------------------------------------------------------------------

// BatchScalarAgg is the vectorized scalar-aggregation path (GROUP BY with no
// keys): aggregate arguments evaluate batch-at-a-time and feed the same
// aggregate states as the row operator, so results (including the one-row
// output for empty input) are identical.
type BatchScalarAgg struct {
	Aggs   []*AggSpec // compiled row specs (used for state construction)
	Args   [][]VecFactory
	Child  Node
	schema []algebra.Column
}

// NewBatchScalarAgg builds a vectorized scalar aggregation. args[i] are the
// batched argument evaluators of Aggs[i].
func NewBatchScalarAgg(aggs []*AggSpec, args [][]VecFactory, child Node, schema []algebra.Column) *BatchScalarAgg {
	return &BatchScalarAgg{Aggs: aggs, Args: args, Child: child, schema: schema}
}

// Schema implements Node.
func (a *BatchScalarAgg) Schema() []algebra.Column { return a.schema }

// Open implements Node.
func (a *BatchScalarAgg) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(a, ctx) }

// OpenBatch implements BatchNode.
func (a *BatchScalarAgg) OpenBatch(ctx *Ctx) (BatchIter, error) {
	in, err := OpenBatches(a.Child, ctx)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	states := make([]aggState, len(a.Aggs))
	for i, spec := range a.Aggs {
		st, err := spec.newState()
		if err != nil {
			return nil, err
		}
		states[i] = st
	}
	argEvs := make([][]VecEvaluator, len(a.Aggs))
	argVecs := make([][][]sqltypes.Value, len(a.Aggs))
	for i := range argVecs {
		argEvs[i] = Instantiate(a.Args[i])
		argVecs[i] = make([][]sqltypes.Value, len(a.Args[i]))
	}
	var rowArgs []sqltypes.Value
	for {
		if err := ctx.Cancelled(); err != nil {
			return nil, err
		}
		b, ok, err := in.NextBatch(DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i := range a.Aggs {
			for c, ev := range argEvs[i] {
				v, err := ev(ctx, b)
				if err != nil {
					return nil, err
				}
				argVecs[i][c] = v
			}
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			p := b.LiveAt(r)
			for i := range a.Aggs {
				vecs := argVecs[i]
				if cap(rowArgs) < len(vecs) {
					rowArgs = make([]sqltypes.Value, len(vecs))
				}
				args := rowArgs[:len(vecs)]
				for c := range vecs {
					args[c] = vecs[c][p]
				}
				if err := states[i].add(ctx, args); err != nil {
					return nil, err
				}
			}
		}
	}
	row := make(storage.Row, 0, len(states))
	for _, st := range states {
		v, err := st.result(ctx)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	out := NewBatch(len(row), 1)
	out.AppendRow(row)
	return &singleBatchIter{b: out}, nil
}

// singleBatchIter yields one batch then EOS.
type singleBatchIter struct {
	b    *Batch
	done bool
}

func (s *singleBatchIter) NextBatch(int) (*Batch, bool, error) {
	if s.done || s.b == nil {
		return nil, false, nil
	}
	s.done = true
	return s.b, true, nil
}

func (s *singleBatchIter) Close() error { return nil }
