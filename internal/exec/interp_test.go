package exec

import (
	"strings"
	"testing"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/sqltypes"
)

// mustParseBody parses a statement list by wrapping it in a function.
func mustParseBody(t *testing.T, body string) []ast.Stmt {
	t.Helper()
	src := "create function __wrap() returns int as begin " + body + " end"
	script, err := parser.ParseScript(src)
	if err != nil {
		t.Fatalf("parse body %q: %v", body, err)
	}
	return script.Functions[0].Body
}

// interpWith registers the given functions and returns an interpreter with
// no query planner (pure imperative tests).
func interpWith(t *testing.T, src string) *Interp {
	t.Helper()
	cat := catalog.New()
	script, err := parser.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range script.Functions {
		if _, err := cat.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	return NewInterp(cat, nil, true)
}

func callScalar(t *testing.T, in *Interp, name string, args ...sqltypes.Value) sqltypes.Value {
	t.Helper()
	v, err := in.CallScalar(NewCtx(in), name, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestInterpArithmeticAndBranching(t *testing.T) {
	in := interpWith(t, `
create function grade(int score) returns varchar as
begin
  string g;
  if (score >= 90) g = 'A';
  else if (score >= 80) g = 'B';
  else g = 'C';
  return g;
end`)
	cases := map[int64]string{95: "A", 85: "B", 50: "C", 90: "A", 80: "B"}
	for score, want := range cases {
		if got := callScalar(t, in, "grade", sqltypes.NewInt(score)); got.Str() != want {
			t.Errorf("grade(%d) = %v, want %s", score, got, want)
		}
	}
}

func TestInterpWhileLoop(t *testing.T) {
	in := interpWith(t, `
create function sum_to(int n) returns int as
begin
  int i = 0; int total = 0;
  while (i < n)
  begin
    i = i + 1;
    total = total + i;
  end
  return total;
end`)
	if got := callScalar(t, in, "sum_to", sqltypes.NewInt(10)); got.Int() != 55 {
		t.Errorf("sum_to(10) = %v", got)
	}
	if got := callScalar(t, in, "sum_to", sqltypes.NewInt(0)); got.Int() != 0 {
		t.Errorf("sum_to(0) = %v", got)
	}
}

func TestInterpNestedUDFCalls(t *testing.T) {
	in := interpWith(t, `
create function double_it(int x) returns int as
begin
  return x * 2;
end
create function quad(int x) returns int as
begin
  return double_it(double_it(x));
end`)
	if got := callScalar(t, in, "quad", sqltypes.NewInt(3)); got.Int() != 12 {
		t.Errorf("quad(3) = %v", got)
	}
}

func TestInterpRecursionDepthLimit(t *testing.T) {
	in := interpWith(t, `
create function forever(int x) returns int as
begin
  return forever(x);
end`)
	if _, err := in.CallScalar(NewCtx(in), "forever", []sqltypes.Value{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("infinite recursion must be caught")
	}
}

func TestInterpUninitializedIsNull(t *testing.T) {
	in := interpWith(t, `
create function bottom() returns int as
begin
  int x;
  return x;
end`)
	if got := callScalar(t, in, "bottom"); !got.IsNull() {
		t.Errorf("⊥ should be NULL, got %v", got)
	}
}

func TestInterpCaseAndIn(t *testing.T) {
	in := interpWith(t, `
create function classify(int x) returns varchar as
begin
  return case when x in (1, 2, 3) then 'small' when x > 100 then 'big' else 'mid' end;
end`)
	if got := callScalar(t, in, "classify", sqltypes.NewInt(2)); got.Str() != "small" {
		t.Errorf("classify(2) = %v", got)
	}
	if got := callScalar(t, in, "classify", sqltypes.NewInt(500)); got.Str() != "big" {
		t.Errorf("classify(500) = %v", got)
	}
	if got := callScalar(t, in, "classify", sqltypes.NewInt(50)); got.Str() != "mid" {
		t.Errorf("classify(50) = %v", got)
	}
}

func TestInterpErrors(t *testing.T) {
	in := interpWith(t, `
create function f(int x) returns int as
begin
  return x;
end`)
	ctx := NewCtx(in)
	if _, err := in.CallScalar(ctx, "nosuch", nil); err == nil {
		t.Error("unknown function")
	}
	if _, err := in.CallScalar(ctx, "f", nil); err == nil {
		t.Error("arity mismatch")
	}
	if _, err := in.CallTable(ctx, "f", []sqltypes.Value{sqltypes.NewInt(1)}); err == nil {
		t.Error("scalar function in table context")
	}
}

func TestInterpFallthroughWithoutReturn(t *testing.T) {
	in := interpWith(t, `
create function noret(int x) returns int as
begin
  int y = x + 1;
end`)
	if got := callScalar(t, in, "noret", sqltypes.NewInt(1)); !got.IsNull() {
		t.Errorf("function without RETURN yields NULL, got %v", got)
	}
}

func TestInterpAccumulateSharedState(t *testing.T) {
	def := &catalog.Aggregate{
		Name:   "sumpos",
		State:  []catalog.AggStateVar{{Name: "acc", Init: sqltypes.NewInt(0)}},
		Params: []string{"v"},
		Body:   mustParseBody(t, "if (v > 0) acc = acc + v;"),
		Result: "acc",
	}
	in := interpWith(t, `create function dummy() returns int as begin return 1; end`)
	ctx := NewCtx(in)
	state := map[string]sqltypes.Value{"acc": sqltypes.NewInt(0)}
	for _, v := range []int64{5, -3, 7} {
		if err := in.Accumulate(ctx, def, state, []sqltypes.Value{sqltypes.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if state["acc"].Int() != 12 {
		t.Errorf("acc = %v", state["acc"])
	}
	if ctx.Depth() != 1 {
		t.Errorf("frames leaked: depth %d", ctx.Depth())
	}
}

func TestInterpEvalProcExprUnknownVariable(t *testing.T) {
	in := interpWith(t, `create function dummy() returns int as begin return 1; end`)
	_, err := in.EvalProcExpr(NewCtx(in), &ast.ColName{Name: "ghost"})
	if err == nil || !strings.Contains(err.Error(), "unknown variable") {
		t.Errorf("err = %v", err)
	}
}
