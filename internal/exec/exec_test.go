package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

func intRow(vals ...int64) storage.Row {
	out := make(storage.Row, len(vals))
	for i, v := range vals {
		out[i] = sqltypes.NewInt(v)
	}
	return out
}

func intsOf(rows []storage.Row, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		v, _ := r[col].AsInt()
		out[i] = v
	}
	return out
}

func schema2(names ...string) []algebra.Column {
	out := make([]algebra.Column, len(names))
	for i, n := range names {
		out[i] = algebra.Column{Name: n, Type: sqltypes.KindInt}
	}
	return out
}

func colEval(t *testing.T, name string, sc []algebra.Column) Evaluator {
	t.Helper()
	ev, err := Compile(&algebra.ColRef{Name: name}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestFilterProjectLimit(t *testing.T) {
	rows := []storage.Row{intRow(1, 10), intRow(2, 20), intRow(3, 30), intRow(4, 40)}
	sc := schema2("a", "b")
	src := NewValues(rows, sc)
	pred, err := Compile(&algebra.Cmp{Op: sqltypes.CmpGT,
		L: &algebra.ColRef{Name: "b"}, R: &algebra.Const{Val: sqltypes.NewInt(15)}}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Compile(&algebra.Arith{Op: sqltypes.OpMul,
		L: &algebra.ColRef{Name: "a"}, R: &algebra.Const{Val: sqltypes.NewInt(2)}}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Limit{N: 2, Child: NewProject([]Evaluator{proj}, false,
		&Filter{Pred: pred, Child: src}, schema2("x"))}
	got, err := Drain(plan, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{4, 6}; !reflect.DeepEqual(intsOf(got, 0), want) {
		t.Errorf("got %v, want %v", intsOf(got, 0), want)
	}
}

func TestDistinctProject(t *testing.T) {
	rows := []storage.Row{intRow(1), intRow(2), intRow(1), intRow(3), intRow(2)}
	sc := schema2("a")
	plan := NewProject([]Evaluator{colEval(t, "a", sc)}, true, NewValues(rows, sc), sc)
	got, err := Drain(plan, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("distinct rows = %d", len(got))
	}
}

func buildJoinInputs() (Node, Node, []algebra.Column, []algebra.Column) {
	lsc := schema2("lk", "lv")
	rsc := schema2("rk", "rv")
	l := NewValues([]storage.Row{
		intRow(1, 100), intRow(2, 200), intRow(3, 300), intRow(2, 201),
	}, lsc)
	r := NewValues([]storage.Row{
		intRow(2, 9000), intRow(3, 9001), intRow(3, 9002), intRow(5, 9005),
	}, rsc)
	return l, r, lsc, rsc
}

// joinResults runs a join and returns (lk, rv) pairs.
func runJoin(t *testing.T, n Node) [][2]int64 {
	t.Helper()
	rows, err := Drain(n, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	var out [][2]int64
	for _, r := range rows {
		a, _ := r[0].AsInt()
		var b int64 = -1
		if len(r) > 2 && !r[2].IsNull() {
			b, _ = r[2].AsInt()
		}
		out = append(out, [2]int64{a, b})
	}
	return out
}

func TestHashJoinMatchesNLJoin(t *testing.T) {
	for _, kind := range []algebra.JoinKind{algebra.InnerJoin, algebra.LeftOuterJoin,
		algebra.SemiJoin, algebra.AntiJoin} {
		l, r, lsc, rsc := buildJoinInputs()
		joined := append(append([]algebra.Column{}, lsc...), rsc...)
		cond, err := Compile(&algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Name: "lk"}, R: &algebra.ColRef{Name: "rk"}}, joined, nil)
		if err != nil {
			t.Fatal(err)
		}
		nl := NewNLJoin(kind, cond, l, r, false)
		nlRows, err := Drain(nl, NewCtx(nil))
		if err != nil {
			t.Fatal(err)
		}

		l2, r2, _, _ := buildJoinInputs()
		hj := NewHashJoin(kind,
			[]Evaluator{colEval(t, "lk", lsc)},
			[]Evaluator{colEval(t, "rk", rsc)},
			nil, l2, r2)
		hjRows, err := Drain(hj, NewCtx(nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(nlRows) != len(hjRows) {
			t.Errorf("%v: NLJ %d rows, HJ %d rows", kind, len(nlRows), len(hjRows))
			continue
		}
		count := map[string]int{}
		for _, r := range nlRows {
			count[sqltypes.KeyOf(r...)]++
		}
		for _, r := range hjRows {
			count[sqltypes.KeyOf(r...)]--
		}
		for _, v := range count {
			if v != 0 {
				t.Errorf("%v: NLJ and HJ disagree", kind)
				break
			}
		}
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	l, r, lsc, rsc := buildJoinInputs()
	mj := NewMergeJoin(colEval(t, "lk", lsc), colEval(t, "rk", rsc), l, r)
	mjRows, err := Drain(mj, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	l2, r2, _, _ := buildJoinInputs()
	hj := NewHashJoin(algebra.InnerJoin,
		[]Evaluator{colEval(t, "lk", lsc)},
		[]Evaluator{colEval(t, "rk", rsc)}, nil, l2, r2)
	hjRows, err := Drain(hj, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(mjRows) != len(hjRows) {
		t.Fatalf("merge %d vs hash %d", len(mjRows), len(hjRows))
	}
	count := map[string]int{}
	for _, r := range mjRows {
		count[sqltypes.KeyOf(r...)]++
	}
	for _, r := range hjRows {
		count[sqltypes.KeyOf(r...)]--
	}
	for _, v := range count {
		if v != 0 {
			t.Fatal("merge join and hash join disagree")
		}
	}
}

func TestLeftOuterNullExtension(t *testing.T) {
	l, r, lsc, rsc := buildJoinInputs()
	hj := NewHashJoin(algebra.LeftOuterJoin,
		[]Evaluator{colEval(t, "lk", lsc)},
		[]Evaluator{colEval(t, "rk", rsc)}, nil, l, r)
	pairs := runJoin(t, hj)
	sawNull := false
	for _, p := range pairs {
		if p[0] == 1 && p[1] == -1 {
			sawNull = true
		}
	}
	if !sawNull {
		t.Errorf("unmatched left row should be null-extended: %v", pairs)
	}
}

func TestNullKeysNeverJoin(t *testing.T) {
	lsc, rsc := schema2("lk"), schema2("rk")
	l := NewValues([]storage.Row{{sqltypes.Null}, intRow(1)}, lsc)
	r := NewValues([]storage.Row{{sqltypes.Null}, intRow(1)}, rsc)
	hj := NewHashJoin(algebra.InnerJoin,
		[]Evaluator{colEval(t, "lk", lsc)}, []Evaluator{colEval(t, "rk", rsc)}, nil, l, r)
	rows, err := Drain(hj, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("NULL keys must not join: got %d rows", len(rows))
	}
}

func TestHashAggBuiltins(t *testing.T) {
	sc := schema2("g", "v")
	rows := []storage.Row{
		intRow(1, 10), intRow(1, 20), intRow(2, 5),
		{sqltypes.NewInt(2), sqltypes.Null}, // NULL ignored by sum/avg/count(v)
	}
	keys := []Evaluator{colEval(t, "g", sc)}
	aggs := []*AggSpec{
		{Func: "sum", Args: []Evaluator{colEval(t, "v", sc)}},
		{Func: "count", Args: []Evaluator{colEval(t, "v", sc)}},
		{Func: "count"}, // count(*)
		{Func: "min", Args: []Evaluator{colEval(t, "v", sc)}},
		{Func: "max", Args: []Evaluator{colEval(t, "v", sc)}},
		{Func: "avg", Args: []Evaluator{colEval(t, "v", sc)}},
	}
	out := schema2("g", "s", "c", "cs", "mn", "mx")
	out = append(out, algebra.Column{Name: "av", Type: sqltypes.KindFloat})
	agg := NewHashAgg(keys, aggs, NewValues(rows, sc), out)
	got, err := Drain(agg, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	byG := map[int64]storage.Row{}
	for _, r := range got {
		g, _ := r[0].AsInt()
		byG[g] = r
	}
	g1 := byG[1]
	if v, _ := g1[1].AsInt(); v != 30 {
		t.Errorf("sum(g=1) = %v", g1[1])
	}
	g2 := byG[2]
	if v, _ := g2[1].AsInt(); v != 5 {
		t.Errorf("sum(g=2) = %v", g2[1])
	}
	if v, _ := g2[2].AsInt(); v != 1 {
		t.Errorf("count(v) should skip NULL: %v", g2[2])
	}
	if v, _ := g2[3].AsInt(); v != 2 {
		t.Errorf("count(*) = %v", g2[3])
	}
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	sc := schema2("v")
	agg := NewHashAgg(nil, []*AggSpec{
		{Func: "sum", Args: []Evaluator{colEval(t, "v", sc)}},
		{Func: "count"},
	}, NewValues(nil, sc), schema2("s", "c"))
	got, err := Drain(agg, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("scalar agg over empty input must yield one row, got %d", len(got))
	}
	if !got[0][0].IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", got[0][0])
	}
	if v, _ := got[0][1].AsInt(); v != 0 {
		t.Errorf("COUNT over empty = %v, want 0", got[0][1])
	}
}

func TestDistinctAggregate(t *testing.T) {
	sc := schema2("v")
	rows := []storage.Row{intRow(1), intRow(1), intRow(2), intRow(3), intRow(3)}
	agg := NewHashAgg(nil, []*AggSpec{
		{Func: "count", Args: []Evaluator{colEval(t, "v", sc)}, Distinct: true},
		{Func: "sum", Args: []Evaluator{colEval(t, "v", sc)}, Distinct: true},
	}, NewValues(rows, sc), schema2("c", "s"))
	got, err := Drain(agg, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got[0][0].AsInt(); v != 3 {
		t.Errorf("count(distinct) = %v", got[0][0])
	}
	if v, _ := got[0][1].AsInt(); v != 6 {
		t.Errorf("sum(distinct) = %v", got[0][1])
	}
}

func TestUserDefinedAggregate(t *testing.T) {
	// Example 6's aux-agg: accumulate negative profits.
	def := &catalog.Aggregate{
		Name:   "aux_agg",
		State:  []catalog.AggStateVar{{Name: "total_loss", Init: sqltypes.NewInt(0)}},
		Params: []string{"profit"},
		Body:   mustParseBody(t, "if (profit < 0) total_loss = total_loss - profit;"),
		Result: "total_loss",
	}
	cat := catalog.New()
	if err := cat.AddAggregate(def); err != nil {
		t.Fatal(err)
	}
	interp := NewInterp(cat, nil, true)
	sc := schema2("profit")
	rows := []storage.Row{intRow(-5), intRow(3), intRow(-2), intRow(10)}
	agg := NewHashAgg(nil, []*AggSpec{{Func: "aux_agg",
		Args: []Evaluator{colEval(t, "profit", sc)}, UserDef: def}},
		NewValues(rows, sc), schema2("loss"))
	got, err := Drain(agg, NewCtx(interp))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got[0][0].AsInt(); v != 7 {
		t.Errorf("aux_agg = %v, want 7", got[0][0])
	}
}

func TestSortStabilityAndDirections(t *testing.T) {
	sc := schema2("a", "b")
	rows := []storage.Row{intRow(2, 1), intRow(1, 2), intRow(2, 3), intRow(1, 4)}
	plan := &Sort{Keys: []SortSpec{{Key: colEval(t, "a", sc)}}, Child: NewValues(rows, sc)}
	got, err := Drain(plan, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Stable: within a==1, input order 2 then 4.
	if b0, _ := got[0][1].AsInt(); b0 != 2 {
		t.Errorf("stability broken: %v", got)
	}
	desc := &Sort{Keys: []SortSpec{{Key: colEval(t, "a", sc), Desc: true}}, Child: NewValues(rows, sc)}
	got2, _ := Drain(desc, NewCtx(nil))
	if a0, _ := got2[0][0].AsInt(); a0 != 2 {
		t.Errorf("desc order: %v", got2)
	}
}

func TestUnionAllAndSingle(t *testing.T) {
	sc := schema2("a")
	u := &UnionAll{L: NewValues([]storage.Row{intRow(1)}, sc),
		R: NewValues([]storage.Row{intRow(2), intRow(3)}, sc)}
	got, err := Drain(u, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(intsOf(got, 0), []int64{1, 2, 3}) {
		t.Errorf("union = %v", intsOf(got, 0))
	}
	s, err := Drain(&Single{}, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || len(s[0]) != 0 {
		t.Errorf("single = %v", s)
	}
}

func TestCtxFrames(t *testing.T) {
	ctx := NewCtx(nil)
	ctx.Set("x", sqltypes.NewInt(1))
	ctx.Push()
	ctx.Set("x", sqltypes.NewInt(2))
	if v, _ := ctx.Get("x"); v.Int() != 2 {
		t.Error("inner frame should shadow")
	}
	ctx.Assign("y", sqltypes.NewInt(9))
	ctx.Pop()
	if v, _ := ctx.Get("x"); v.Int() != 1 {
		t.Error("outer value should be restored")
	}
	if _, ok := ctx.Get("y"); ok {
		t.Error("inner assignment should vanish with the frame")
	}
	ctx.Push()
	ctx.Assign("x", sqltypes.NewInt(5)) // assigns through to outer frame
	ctx.Pop()
	if v, _ := ctx.Get("x"); v.Int() != 5 {
		t.Error("Assign should update the innermost existing binding")
	}
}

func TestEvalCaseLogicNulls(t *testing.T) {
	sc := schema2("a")
	e := &algebra.Case{
		Whens: []algebra.CaseWhen{
			{Cond: &algebra.Cmp{Op: sqltypes.CmpGT, L: &algebra.ColRef{Name: "a"},
				R: &algebra.Const{Val: sqltypes.NewInt(10)}},
				Then: &algebra.Const{Val: sqltypes.NewString("big")}},
		},
		Else: &algebra.Const{Val: sqltypes.NewString("small")},
	}
	ev, err := Compile(e, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(nil)
	if v, _ := ev(ctx, intRow(20)); v.Str() != "big" {
		t.Errorf("case(20) = %v", v)
	}
	if v, _ := ev(ctx, intRow(5)); v.Str() != "small" {
		t.Errorf("case(5) = %v", v)
	}
	// NULL comparison is Unknown, so the WHEN does not fire.
	if v, _ := ev(ctx, storage.Row{sqltypes.Null}); v.Str() != "small" {
		t.Errorf("case(NULL) = %v", v)
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// FALSE AND (1/0 = 1) must not evaluate the division.
	sc := schema2("a")
	e := &algebra.Logic{Op: algebra.LogicAnd,
		L: &algebra.Const{Val: sqltypes.NewBool(false)},
		R: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.Arith{Op: sqltypes.OpDiv,
				L: &algebra.Const{Val: sqltypes.NewInt(1)},
				R: &algebra.Const{Val: sqltypes.NewInt(0)}},
			R: &algebra.Const{Val: sqltypes.NewInt(1)}}}
	ev, err := Compile(e, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev(NewCtx(nil), intRow(1))
	if err != nil {
		t.Fatalf("short circuit failed: %v", err)
	}
	if v.Bool() {
		t.Error("FALSE AND x should be FALSE")
	}
}

func TestCompileErrors(t *testing.T) {
	sc := schema2("a")
	if _, err := Compile(&algebra.ColRef{Name: "nosuch"}, sc, nil); err == nil {
		t.Error("unresolved column should fail to compile")
	}
	if _, err := Compile(&algebra.Call{Name: "nosuchfunc"}, sc, nil); err == nil {
		t.Error("unknown function should fail to compile")
	}
	if _, err := Compile(&algebra.Subquery{Rel: &algebra.Single{}}, sc, nil); err == nil {
		t.Error("subquery without resolver should fail")
	}
}

// Property: hash join equals nested loop join on random data.
type joinCase struct {
	L, R []int64
}

func (joinCase) Generate(r *rand.Rand, _ int) reflect.Value {
	mk := func() []int64 {
		n := r.Intn(20)
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(r.Intn(8))
		}
		return out
	}
	return reflect.ValueOf(joinCase{L: mk(), R: mk()})
}

func TestQuickHashJoinEqualsNLJoin(t *testing.T) {
	lsc, rsc := schema2("lk"), schema2("rk")
	f := func(c joinCase) bool {
		mkRows := func(vals []int64) []storage.Row {
			out := make([]storage.Row, len(vals))
			for i, v := range vals {
				out[i] = intRow(v)
			}
			return out
		}
		joined := append(append([]algebra.Column{}, lsc...), rsc...)
		cond, err := Compile(&algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Name: "lk"}, R: &algebra.ColRef{Name: "rk"}}, joined, nil)
		if err != nil {
			return false
		}
		for _, kind := range []algebra.JoinKind{algebra.InnerJoin, algebra.LeftOuterJoin,
			algebra.SemiJoin, algebra.AntiJoin} {
			nl, err := Drain(NewNLJoin(kind, cond,
				NewValues(mkRows(c.L), lsc), NewValues(mkRows(c.R), rsc), false), NewCtx(nil))
			if err != nil {
				return false
			}
			lk, _ := Compile(&algebra.ColRef{Name: "lk"}, lsc, nil)
			rk, _ := Compile(&algebra.ColRef{Name: "rk"}, rsc, nil)
			hj, err := Drain(NewHashJoin(kind, []Evaluator{lk}, []Evaluator{rk}, nil,
				NewValues(mkRows(c.L), lsc), NewValues(mkRows(c.R), rsc)), NewCtx(nil))
			if err != nil {
				return false
			}
			if len(nl) != len(hj) {
				return false
			}
			count := map[string]int{}
			for _, r := range nl {
				count[sqltypes.KeyOf(r...)]++
			}
			for _, r := range hj {
				count[sqltypes.KeyOf(r...)]--
			}
			for _, v := range count {
				if v != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
