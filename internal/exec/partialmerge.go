// Distributed partial-aggregate merging: the gather half of the shard
// router's scatter-merge. Shards run the same GROUP BY with finalization
// suppressed (avg decomposed into sum + non-NULL count, everything else
// shipped as its per-shard final value — shard partitions are disjoint, so
// sum/count/min/max merge losslessly from finals) and the router absorbs
// one partial tuple per shard per group into these states. The states are
// the exact mergeableState implementations the parallel group-by already
// merges per-worker, so distributed and intra-query aggregation cannot
// drift apart semantically.
package exec

import (
	"udfdecorr/internal/sqltypes"
)

// PartialAggSpec describes one aggregate of a distributed GROUP BY, in
// the order the shard-local partial plan emits them after the group keys.
type PartialAggSpec struct {
	Func string // sum, count, min, max, avg (lower-case)
	Star bool   // count(*) (labeling only; merge math is identical)
}

// Width is how many partial columns the shard plan ships for this
// aggregate: avg ships its sum and its non-NULL count, the rest one value.
func (s PartialAggSpec) Width() int {
	if s.Func == "avg" {
		return 2
	}
	return 1
}

// MergeablePartial reports whether the named builtin aggregate function can
// be merged from per-shard partials at all.
func MergeablePartial(fn string) bool {
	switch fn {
	case "sum", "count", "min", "max", "avg":
		return true
	default:
		return false
	}
}

// PartialMerge accumulates the per-shard partial tuples of one group and
// finalizes them into the aggregates' global values.
type PartialMerge struct {
	specs  []PartialAggSpec
	states []mergeableState
}

// NewPartialMerge builds the merge states for one group.
func NewPartialMerge(specs []PartialAggSpec) (*PartialMerge, error) {
	states := make([]mergeableState, len(specs))
	for i, sp := range specs {
		switch sp.Func {
		case "sum":
			states[i] = &sumState{}
		case "count":
			states[i] = &countState{star: sp.Star}
		case "min":
			states[i] = &minMaxState{}
		case "max":
			states[i] = &minMaxState{max: true}
		case "avg":
			states[i] = &avgState{}
		default:
			return nil, Errorf("aggregate %s cannot be merged from shard partials", sp.Func)
		}
	}
	return &PartialMerge{specs: specs, states: states}, nil
}

// Width is the total number of partial columns one shard row carries for
// these specs (the row's arity past the group keys).
func (m *PartialMerge) Width() int {
	w := 0
	for _, sp := range m.specs {
		w += sp.Width()
	}
	return w
}

// Absorb merges one shard's partial tuple (the row cells after the group
// keys, in spec order) into the running states.
func (m *PartialMerge) Absorb(partials []sqltypes.Value) error {
	if len(partials) != m.Width() {
		return Errorf("partial tuple has %d cells, want %d", len(partials), m.Width())
	}
	i := 0
	for k, sp := range m.specs {
		switch sp.Func {
		case "sum":
			o := &sumState{}
			if v := partials[i]; !v.IsNull() {
				o.acc, o.seenAny = v, true
			}
			if err := m.states[k].mergeState(o); err != nil {
				return err
			}
			i++
		case "count":
			n, ok := partials[i].AsInt()
			if !ok {
				return Errorf("count partial %s is not an integer", partials[i])
			}
			if err := m.states[k].mergeState(&countState{n: n}); err != nil {
				return err
			}
			i++
		case "min", "max":
			o := &minMaxState{max: sp.Func == "max"}
			if v := partials[i]; !v.IsNull() {
				o.best, o.seen = v, true
			}
			if err := m.states[k].mergeState(o); err != nil {
				return err
			}
			i++
		case "avg":
			sum, cnt := partials[i], partials[i+1]
			o := &avgState{}
			if !sum.IsNull() {
				f, ok := sum.AsFloat()
				if !ok {
					return Errorf("avg sum partial %s is not numeric", sum)
				}
				n, ok := cnt.AsInt()
				if !ok {
					return Errorf("avg count partial %s is not an integer", cnt)
				}
				o.sum, o.n = f, n
			}
			if err := m.states[k].mergeState(o); err != nil {
				return err
			}
			i += 2
		}
	}
	return nil
}

// Results finalizes the merged states into one value per aggregate.
func (m *PartialMerge) Results() ([]sqltypes.Value, error) {
	out := make([]sqltypes.Value, len(m.states))
	for i, st := range m.states {
		v, err := st.result(nil)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
