package exec

import (
	"strings"
	"sync"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// maxLoopIterations bounds WHILE loops as a safety net against runaway UDFs.
const maxLoopIterations = 100_000_000

// maxCallDepth bounds UDF call recursion.
const maxCallDepth = 64

// Interp interprets procedural UDF bodies statement by statement. This is
// the paper's baseline: when a query's plan invokes a UDF per tuple, each
// embedded SQL statement is executed as a fresh (parameterized) query.
//
// PlanSelect is wired by the engine to algebrize and plan an embedded
// SELECT; when CachePlans is set, plans are cached per statement (profile
// SYS1), otherwise every invocation re-plans (profile SYS2, modelling a
// system with heavier per-invocation overhead).
//
// An Interp is safe for concurrent use by multiple queries: the only
// mutable state it owns is the embedded-plan cache, guarded by mu. All
// per-invocation state (variable frames, call depth, counters, cursors)
// lives in the Ctx each caller supplies, and cached plan Nodes are immutable
// after construction (each Open yields an independent iterator). Fields are
// set once at construction and must not be reassigned afterwards.
type Interp struct {
	Cat        *catalog.Catalog
	PlanSelect func(sel *ast.SelectStmt) (Node, error)
	CachePlans bool

	mu        sync.Mutex // guards planCache
	planCache map[*ast.SelectStmt]Node
}

// NewInterp builds an interpreter over a catalog.
func NewInterp(cat *catalog.Catalog, planSelect func(*ast.SelectStmt) (Node, error), cachePlans bool) *Interp {
	return &Interp{Cat: cat, PlanSelect: planSelect, CachePlans: cachePlans,
		planCache: map[*ast.SelectStmt]Node{}}
}

// procState is per-call interpreter state: open cursors and table variables.
type procState struct {
	cursors map[string]*cursorState
	tables  map[string][]storage.Row
}

type cursorState struct {
	sel  *ast.SelectStmt
	rows []storage.Row
	pos  int
	open bool
}

func newProcState() *procState {
	return &procState{cursors: map[string]*cursorState{}, tables: map[string][]storage.Row{}}
}

// control indicates how statement execution terminated.
type control uint8

const (
	ctlNext control = iota
	ctlReturn
)

// planFor plans (or fetches a cached plan of) an embedded SELECT.
func (in *Interp) planFor(ctx *Ctx, sel *ast.SelectStmt) (Node, error) {
	if in.PlanSelect == nil {
		return nil, Errorf("interpreter has no query planner")
	}
	if in.CachePlans {
		in.mu.Lock()
		n, ok := in.planCache[sel]
		in.mu.Unlock()
		if ok {
			return n, nil
		}
	}
	ctx.Counters.PlanBuilds++
	n, err := in.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	if in.CachePlans {
		in.mu.Lock()
		in.planCache[sel] = n
		in.mu.Unlock()
	}
	return n, nil
}

func (in *Interp) runQuery(ctx *Ctx, sel *ast.SelectStmt) ([]storage.Row, error) {
	n, err := in.planFor(ctx, sel)
	if err != nil {
		return nil, err
	}
	ctx.Counters.QueryExecs++
	return Drain(n, ctx)
}

// CallScalar invokes a scalar UDF with the given arguments.
func (in *Interp) CallScalar(ctx *Ctx, name string, args []sqltypes.Value) (sqltypes.Value, error) {
	fn, ok := in.Cat.Function(name)
	if !ok {
		return sqltypes.Null, Errorf("unknown function %q", name)
	}
	if fn.IsTableValued() {
		return sqltypes.Null, Errorf("function %q returns a table; scalar context", name)
	}
	if len(args) != len(fn.Def.Params) {
		return sqltypes.Null, Errorf("function %q expects %d args, got %d", name, len(fn.Def.Params), len(args))
	}
	ctx.depth++
	defer func() { ctx.depth-- }()
	if ctx.depth > maxCallDepth {
		return sqltypes.Null, Errorf("UDF call depth exceeded in %q", name)
	}
	ctx.Counters.UDFCalls++
	ctx.Push()
	defer ctx.Pop()
	for i, p := range fn.Def.Params {
		ctx.Set(p.Name, args[i])
	}
	st := newProcState()
	ctl, ret, err := in.execStmts(ctx, st, fn.Def.Body)
	if err != nil {
		return sqltypes.Null, err
	}
	if ctl != ctlReturn {
		return sqltypes.Null, nil
	}
	return ret, nil
}

// CallTable invokes a table-valued UDF, returning its materialized rows.
func (in *Interp) CallTable(ctx *Ctx, name string, args []sqltypes.Value) ([]storage.Row, error) {
	fn, ok := in.Cat.Function(name)
	if !ok {
		return nil, Errorf("unknown function %q", name)
	}
	if !fn.IsTableValued() {
		return nil, Errorf("function %q is scalar; table context", name)
	}
	if len(args) != len(fn.Def.Params) {
		return nil, Errorf("function %q expects %d args, got %d", name, len(fn.Def.Params), len(args))
	}
	ctx.depth++
	defer func() { ctx.depth-- }()
	if ctx.depth > maxCallDepth {
		return nil, Errorf("UDF call depth exceeded in %q", name)
	}
	ctx.Counters.UDFCalls++
	ctx.Push()
	defer ctx.Pop()
	for i, p := range fn.Def.Params {
		ctx.Set(p.Name, args[i])
	}
	st := newProcState()
	st.tables[fn.Def.TableName] = nil
	_, _, err := in.execStmts(ctx, st, fn.Def.Body)
	if err != nil {
		return nil, err
	}
	rows := st.tables[fn.Def.TableName]
	want := len(fn.Def.TableCols)
	for _, r := range rows {
		if len(r) != want {
			return nil, Errorf("function %q: inserted row arity %d, want %d", name, len(r), want)
		}
	}
	return rows, nil
}

// Accumulate runs a user-defined aggregate's accumulate body once, updating
// the state map in place.
func (in *Interp) Accumulate(ctx *Ctx, def *catalog.Aggregate, state map[string]sqltypes.Value, args []sqltypes.Value) error {
	if len(args) != len(def.Params) {
		return Errorf("aggregate %q expects %d args, got %d", def.Name, len(def.Params), len(args))
	}
	ctx.Push()
	defer ctx.Pop()
	for k, v := range state {
		ctx.Set(k, v)
	}
	for i, p := range def.Params {
		ctx.Set(p, args[i])
	}
	st := newProcState()
	if _, _, err := in.execStmts(ctx, st, def.Body); err != nil {
		return err
	}
	for k := range state {
		if v, ok := ctx.Get(k); ok {
			state[k] = v
		}
	}
	return nil
}

// execStmts executes a statement list. The per-statement cancellation check
// is what makes a runaway UDF (e.g. a hot WHILE loop, whose body re-enters
// here every iteration) respond to query cancellation and timeouts.
func (in *Interp) execStmts(ctx *Ctx, st *procState, stmts []ast.Stmt) (control, sqltypes.Value, error) {
	for _, s := range stmts {
		if err := ctx.Cancelled(); err != nil {
			return ctlNext, sqltypes.Null, err
		}
		ctl, v, err := in.execStmt(ctx, st, s)
		if err != nil {
			return ctlNext, sqltypes.Null, err
		}
		if ctl == ctlReturn {
			return ctlReturn, v, nil
		}
	}
	return ctlNext, sqltypes.Null, nil
}

func (in *Interp) execStmt(ctx *Ctx, st *procState, s ast.Stmt) (control, sqltypes.Value, error) {
	switch n := s.(type) {
	case *ast.DeclareStmt:
		v := sqltypes.Null // ⊥
		if n.Init != nil {
			var err error
			v, err = in.EvalProcExpr(ctx, n.Init)
			if err != nil {
				return ctlNext, sqltypes.Null, err
			}
		}
		ctx.Set(n.Name, v)
		return ctlNext, sqltypes.Null, nil

	case *ast.AssignStmt:
		v, err := in.EvalProcExpr(ctx, n.Expr)
		if err != nil {
			return ctlNext, sqltypes.Null, err
		}
		ctx.Assign(n.Name, v)
		return ctlNext, sqltypes.Null, nil

	case *ast.IfStmt:
		c, err := in.EvalProcExpr(ctx, n.Cond)
		if err != nil {
			return ctlNext, sqltypes.Null, err
		}
		if sqltypes.TriOf(c) == sqltypes.True {
			return in.execStmts(ctx, st, n.Then)
		}
		return in.execStmts(ctx, st, n.Else)

	case *ast.ReturnStmt:
		if n.Table != "" {
			// Table return: rows stay in st.tables; signal return.
			return ctlReturn, sqltypes.Null, nil
		}
		// RETURN tt; in a table-valued function: tt resolves to the table
		// variable, not a scalar.
		if cn, ok := n.Expr.(*ast.ColName); ok && cn.Qual == "" {
			if _, isTable := st.tables[cn.Name]; isTable {
				return ctlReturn, sqltypes.Null, nil
			}
		}
		v, err := in.EvalProcExpr(ctx, n.Expr)
		if err != nil {
			return ctlNext, sqltypes.Null, err
		}
		return ctlReturn, v, nil

	case *ast.SelectIntoStmt:
		rows, err := in.runQuery(ctx, n.Select)
		if err != nil {
			return ctlNext, sqltypes.Null, err
		}
		targets := n.Select.Into
		switch len(rows) {
		case 0:
			// Empty result: assign NULL (see DESIGN.md on ⊥/empty).
			for _, t := range targets {
				ctx.Assign(t, sqltypes.Null)
			}
		case 1:
			if len(rows[0]) < len(targets) {
				return ctlNext, sqltypes.Null, Errorf("SELECT INTO: %d columns for %d targets", len(rows[0]), len(targets))
			}
			for i, t := range targets {
				ctx.Assign(t, rows[0][i])
			}
		default:
			return ctlNext, sqltypes.Null, Errorf("SELECT INTO returned %d rows", len(rows))
		}
		return ctlNext, sqltypes.Null, nil

	case *ast.DeclareCursorStmt:
		st.cursors[n.Name] = &cursorState{sel: n.Select}
		return ctlNext, sqltypes.Null, nil

	case *ast.OpenStmt:
		cur, ok := st.cursors[n.Cursor]
		if !ok {
			return ctlNext, sqltypes.Null, Errorf("unknown cursor %q", n.Cursor)
		}
		rows, err := in.runQuery(ctx, cur.sel)
		if err != nil {
			return ctlNext, sqltypes.Null, err
		}
		cur.rows, cur.pos, cur.open = rows, 0, true
		return ctlNext, sqltypes.Null, nil

	case *ast.FetchStmt:
		cur, ok := st.cursors[n.Cursor]
		if !ok || !cur.open {
			return ctlNext, sqltypes.Null, Errorf("cursor %q is not open", n.Cursor)
		}
		if cur.pos >= len(cur.rows) {
			ctx.Assign("@@fetch_status", sqltypes.NewInt(-1))
			return ctlNext, sqltypes.Null, nil
		}
		row := cur.rows[cur.pos]
		cur.pos++
		if len(row) < len(n.Into) {
			return ctlNext, sqltypes.Null, Errorf("FETCH: %d columns for %d targets", len(row), len(n.Into))
		}
		for i, t := range n.Into {
			ctx.Assign(t, row[i])
		}
		ctx.Assign("@@fetch_status", sqltypes.NewInt(0))
		return ctlNext, sqltypes.Null, nil

	case *ast.WhileStmt:
		for iter := 0; ; iter++ {
			if iter >= maxLoopIterations {
				return ctlNext, sqltypes.Null, Errorf("WHILE loop exceeded %d iterations", maxLoopIterations)
			}
			if err := ctx.Cancelled(); err != nil {
				return ctlNext, sqltypes.Null, err
			}
			c, err := in.EvalProcExpr(ctx, n.Cond)
			if err != nil {
				return ctlNext, sqltypes.Null, err
			}
			if sqltypes.TriOf(c) != sqltypes.True {
				return ctlNext, sqltypes.Null, nil
			}
			ctl, v, err := in.execStmts(ctx, st, n.Body)
			if err != nil {
				return ctlNext, sqltypes.Null, err
			}
			if ctl == ctlReturn {
				return ctlReturn, v, nil
			}
		}

	case *ast.CloseStmt:
		if cur, ok := st.cursors[n.Cursor]; ok {
			cur.open = false
		}
		return ctlNext, sqltypes.Null, nil

	case *ast.DeallocateStmt:
		delete(st.cursors, n.Cursor)
		return ctlNext, sqltypes.Null, nil

	case *ast.InsertStmt:
		row := make(storage.Row, len(n.Values))
		for i, e := range n.Values {
			v, err := in.EvalProcExpr(ctx, e)
			if err != nil {
				return ctlNext, sqltypes.Null, err
			}
			row[i] = v
		}
		st.tables[n.Table] = append(st.tables[n.Table], row)
		return ctlNext, sqltypes.Null, nil
	}
	return ctlNext, sqltypes.Null, Errorf("cannot interpret statement %T", s)
}

// EvalProcExpr evaluates an AST expression in procedural scope: unqualified
// column names resolve as local variables, subqueries execute as embedded
// queries.
func (in *Interp) EvalProcExpr(ctx *Ctx, e ast.Expr) (sqltypes.Value, error) {
	switch n := e.(type) {
	case *ast.Lit:
		return n.Val, nil

	case *ast.ColName:
		if n.Qual != "" {
			return sqltypes.Null, Errorf("qualified name %s.%s outside query context", n.Qual, n.Name)
		}
		if v, ok := ctx.Get(n.Name); ok {
			return v, nil
		}
		return sqltypes.Null, Errorf("unknown variable %q", n.Name)

	case *ast.ParamRef:
		if v, ok := ctx.Get(n.Name); ok {
			return v, nil
		}
		return sqltypes.Null, Errorf("unknown variable %q", n.Name)

	case *ast.BinExpr:
		l, err := in.EvalProcExpr(ctx, n.L)
		if err != nil {
			return sqltypes.Null, err
		}
		// Short-circuit logic.
		switch n.Op {
		case ast.BinAnd:
			if sqltypes.TriOf(l) == sqltypes.False {
				return sqltypes.NewBool(false), nil
			}
		case ast.BinOr:
			if sqltypes.TriOf(l) == sqltypes.True {
				return sqltypes.NewBool(true), nil
			}
		}
		r, err := in.EvalProcExpr(ctx, n.R)
		if err != nil {
			return sqltypes.Null, err
		}
		switch {
		case n.Op == ast.BinAnd:
			return sqltypes.TriValue(sqltypes.TriOf(l).And(sqltypes.TriOf(r))), nil
		case n.Op == ast.BinOr:
			return sqltypes.TriValue(sqltypes.TriOf(l).Or(sqltypes.TriOf(r))), nil
		case n.Op == ast.BinConcat:
			return sqltypes.Concat(l, r), nil
		case n.Op.IsComparison():
			return sqltypes.TriValue(sqltypes.Cmp(astCmpOp(n.Op), l, r)), nil
		default:
			return sqltypes.Arith(astArithOp(n.Op), l, r)
		}

	case *ast.UnaryExpr:
		v, err := in.EvalProcExpr(ctx, n.E)
		if err != nil {
			return sqltypes.Null, err
		}
		if n.Op == "NOT" {
			return sqltypes.TriValue(sqltypes.TriOf(v).Not()), nil
		}
		return sqltypes.Neg(v)

	case *ast.IsNullExpr:
		v, err := in.EvalProcExpr(ctx, n.E)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(v.IsNull() != n.Neg), nil

	case *ast.CaseExpr:
		for _, w := range n.Whens {
			c, err := in.EvalProcExpr(ctx, w.Cond)
			if err != nil {
				return sqltypes.Null, err
			}
			if sqltypes.TriOf(c) == sqltypes.True {
				return in.EvalProcExpr(ctx, w.Then)
			}
		}
		if n.Else != nil {
			return in.EvalProcExpr(ctx, n.Else)
		}
		return sqltypes.Null, nil

	case *ast.FuncCall:
		args := make([]sqltypes.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := in.EvalProcExpr(ctx, a)
			if err != nil {
				return sqltypes.Null, err
			}
			args[i] = v
		}
		if fn, ok := builtinScalar(strings.ToLower(n.Name), len(args)); ok {
			return fn(args)
		}
		return in.CallScalar(ctx, n.Name, args)

	case *ast.SubqueryExpr:
		rows, err := in.runQuery(ctx, n.Select)
		if err != nil {
			return sqltypes.Null, err
		}
		switch len(rows) {
		case 0:
			return sqltypes.Null, nil
		case 1:
			if len(rows[0]) != 1 {
				return sqltypes.Null, Errorf("scalar subquery produced %d columns", len(rows[0]))
			}
			return rows[0][0], nil
		default:
			return sqltypes.Null, Errorf("scalar subquery returned %d rows", len(rows))
		}

	case *ast.ExistsExpr:
		rows, err := in.runQuery(ctx, n.Select)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool((len(rows) > 0) != n.Neg), nil

	case *ast.InExpr:
		v, err := in.EvalProcExpr(ctx, n.E)
		if err != nil {
			return sqltypes.Null, err
		}
		var candidates []sqltypes.Value
		if n.Select != nil {
			rows, err := in.runQuery(ctx, n.Select)
			if err != nil {
				return sqltypes.Null, err
			}
			for _, r := range rows {
				if len(r) != 1 {
					return sqltypes.Null, Errorf("IN subquery produced %d columns", len(r))
				}
				candidates = append(candidates, r[0])
			}
		} else {
			for _, le := range n.List {
				lv, err := in.EvalProcExpr(ctx, le)
				if err != nil {
					return sqltypes.Null, err
				}
				candidates = append(candidates, lv)
			}
		}
		res := sqltypes.False
		for _, c := range candidates {
			t := sqltypes.Cmp(sqltypes.CmpEQ, v, c)
			if t == sqltypes.True {
				res = sqltypes.True
				break
			}
			if t == sqltypes.Unknown {
				res = sqltypes.Unknown
			}
		}
		if n.Neg {
			res = res.Not()
		}
		return sqltypes.TriValue(res), nil
	}
	return sqltypes.Null, Errorf("cannot evaluate expression %T in procedural scope", e)
}

// astCmpOp maps AST comparison operators to value comparisons.
func astCmpOp(op ast.BinOp) sqltypes.CmpOp {
	switch op {
	case ast.BinEQ:
		return sqltypes.CmpEQ
	case ast.BinNE:
		return sqltypes.CmpNE
	case ast.BinLT:
		return sqltypes.CmpLT
	case ast.BinLE:
		return sqltypes.CmpLE
	case ast.BinGT:
		return sqltypes.CmpGT
	default:
		return sqltypes.CmpGE
	}
}

// astArithOp maps AST arithmetic operators to value arithmetic.
func astArithOp(op ast.BinOp) sqltypes.ArithOp {
	switch op {
	case ast.BinAdd:
		return sqltypes.OpAdd
	case ast.BinSub:
		return sqltypes.OpSub
	case ast.BinMul:
		return sqltypes.OpMul
	case ast.BinDiv:
		return sqltypes.OpDiv
	default:
		return sqltypes.OpMod
	}
}
