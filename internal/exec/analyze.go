// EXPLAIN ANALYZE instrumentation. A Profiler collects per-operator
// execution statistics (rows produced, batches, open count, inclusive wall
// time) keyed by plan Node. Plans are immutable and shared across sessions
// through the plan cache, so the stats live here, in per-execution state
// reachable from the Ctx — never on the nodes themselves.
//
// Instrumentation attaches at the two operator-edge choke points: OpenRows
// (the row path, mirroring how OpenBatches already wraps every batch edge
// with the contract checker) wraps the child's iterator with a timing
// shim when the context is profiling, and costs nothing but a nil check
// when it is not. Parallel operators run their per-worker pipelines under
// forked contexts with private profilers, absorbed by the parent exactly
// like Counters.absorb — worker-side time and rows are reported separately
// (worker_time can legitimately exceed wall time, as in any parallel plan).
package exec

import (
	"sync"
	"time"

	"udfdecorr/internal/storage"
)

// OpStats are one operator's measured execution statistics within a single
// query execution.
type OpStats struct {
	// Opens counts how many times the operator was opened: 1 for most
	// operators, N for the inner side of a correlated Apply driven once per
	// outer row (the "loops" of a Postgres EXPLAIN ANALYZE).
	Opens int64
	// Next counts Next/NextBatch pulls (including the final end-of-stream
	// pull).
	Next int64
	// Rows counts rows emitted to the parent.
	Rows int64
	// Batches counts batches emitted on the vectorized path (0 on the row
	// path).
	Batches int64
	// Time is the inclusive wall time spent inside the operator and its
	// subtree: open (where pipeline breakers do their work) plus every pull.
	Time time.Duration
	// Workers, WorkerRows and WorkerTime are the absorbed per-worker
	// measurements of a parallel operator (Exchange, parallel aggregation):
	// workers launched, rows their pipelines produced before merging, and
	// their summed pipeline time.
	Workers    int64
	WorkerRows int64
	WorkerTime time.Duration
}

// Profiler collects OpStats per plan node for one query execution. The map
// is guarded for the lazy insert at operator open; the per-operator counters
// are then owned by the executing goroutine (parallel workers use private
// Profilers, absorbed after they exit).
type Profiler struct {
	mu  sync.Mutex
	ops map[Node]*OpStats
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{ops: map[Node]*OpStats{}}
}

// statsFor returns the live stats cell for n, creating it on first use.
func (p *Profiler) statsFor(n Node) *OpStats {
	p.mu.Lock()
	st := p.ops[n]
	if st == nil {
		st = &OpStats{}
		p.ops[n] = st
	}
	p.mu.Unlock()
	return st
}

// Stats snapshots the collected stats for n (zero value when the operator
// never executed — e.g. the pruned side of a plan).
func (p *Profiler) Stats(n Node) OpStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.ops[n]; ok {
		return *st
	}
	return OpStats{}
}

// absorbWorker folds a finished worker's measurements into p as worker-side
// stats of the operators the worker executed for (each worker pipeline is
// attributed to its owning parallel node). Mirrors Counters.absorb.
func (p *Profiler) absorbWorker(w *Profiler) {
	if p == nil || w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for n, ws := range w.ops {
		st := p.statsFor(n)
		st.Workers++
		st.WorkerRows += ws.Rows + ws.WorkerRows
		st.WorkerTime += ws.Time + ws.WorkerTime
	}
}

// EnableProfiling attaches a fresh per-operator profiler to the context
// (idempotent). Call before opening the plan; every operator edge opened
// under this context is then instrumented.
func (c *Ctx) EnableProfiling() *Profiler {
	if c.prof == nil {
		c.prof = NewProfiler()
	}
	return c.prof
}

// Profiler returns the context's profiler (nil unless EnableProfiling was
// called).
func (c *Ctx) Profiler() *Profiler { return c.prof }

// OpenRows opens n as a row iterator, attaching instrumentation when the
// context is profiling. All operator-edge row opens go through here (the
// row-path counterpart of OpenBatches), so EXPLAIN ANALYZE observes every
// edge exactly once; with profiling off this is a nil check on top of Open.
func OpenRows(n Node, ctx *Ctx) (Iter, error) {
	if ctx.prof == nil {
		return n.Open(ctx)
	}
	st := ctx.prof.statsFor(n)
	st.Opens++
	start := time.Now()
	it, err := n.Open(ctx)
	st.Time += time.Since(start)
	if err != nil {
		return nil, err
	}
	return &profRowIter{in: it, st: st}, nil
}

// profRowIter charges every pull (and the close) to the operator's stats.
// Time is inclusive: a pull's cost includes the whole subtree below.
type profRowIter struct {
	in Iter
	st *OpStats
}

func (p *profRowIter) Next() (storage.Row, bool, error) {
	start := time.Now()
	r, ok, err := p.in.Next()
	p.st.Time += time.Since(start)
	p.st.Next++
	if ok {
		p.st.Rows++
	}
	return r, ok, err
}

func (p *profRowIter) Close() error {
	start := time.Now()
	err := p.in.Close()
	p.st.Time += time.Since(start)
	return err
}

// profBatchIter is the vectorized counterpart of profRowIter.
type profBatchIter struct {
	in BatchIter
	st *OpStats
}

func (p *profBatchIter) NextBatch(max int) (*Batch, bool, error) {
	start := time.Now()
	b, ok, err := p.in.NextBatch(max)
	p.st.Time += time.Since(start)
	p.st.Next++
	if ok {
		p.st.Batches++
		p.st.Rows += int64(b.Len())
	}
	return b, ok, err
}

func (p *profBatchIter) Close() error {
	start := time.Now()
	err := p.in.Close()
	p.st.Time += time.Since(start)
	return err
}
