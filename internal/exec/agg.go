package exec

import (
	"sort"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// aggState is the running state of one aggregate within one group.
type aggState interface {
	add(ctx *Ctx, args []sqltypes.Value) error
	result(ctx *Ctx) (sqltypes.Value, error)
}

// mergeableState is an aggregate state that can absorb another partial state
// of the same type. The parallel group-by builds per-worker partial states
// and merges them; only aggregates whose states implement this (the builtin
// non-DISTINCT ones) are eligible for parallel aggregation.
type mergeableState interface {
	aggState
	mergeState(other aggState) error
}

// ---------------------------------------------------------------------------
// Builtin aggregate states
// ---------------------------------------------------------------------------

type sumState struct {
	acc     sqltypes.Value
	seenAny bool
}

func (s *sumState) add(_ *Ctx, args []sqltypes.Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	if !s.seenAny {
		s.acc = v
		s.seenAny = true
		return nil
	}
	acc, err := sqltypes.Arith(sqltypes.OpAdd, s.acc, v)
	if err != nil {
		return err
	}
	s.acc = acc
	return nil
}

func (s *sumState) result(*Ctx) (sqltypes.Value, error) {
	if !s.seenAny {
		return sqltypes.Null, nil // SUM over empty/all-NULL is NULL
	}
	return s.acc, nil
}

func (s *sumState) mergeState(other aggState) error {
	o := other.(*sumState)
	if !o.seenAny {
		return nil
	}
	if !s.seenAny {
		s.acc, s.seenAny = o.acc, true
		return nil
	}
	acc, err := sqltypes.Arith(sqltypes.OpAdd, s.acc, o.acc)
	if err != nil {
		return err
	}
	s.acc = acc
	return nil
}

type countState struct {
	n    int64
	star bool // count(*) counts every row; count(e) skips NULL
}

func (s *countState) add(_ *Ctx, args []sqltypes.Value) error {
	if s.star || (len(args) > 0 && !args[0].IsNull()) {
		s.n++
	}
	return nil
}

func (s *countState) result(*Ctx) (sqltypes.Value, error) {
	return sqltypes.NewInt(s.n), nil
}

func (s *countState) mergeState(other aggState) error {
	s.n += other.(*countState).n
	return nil
}

type minMaxState struct {
	best sqltypes.Value
	max  bool
	seen bool
}

func (s *minMaxState) add(_ *Ctx, args []sqltypes.Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	if !s.seen {
		s.best = v
		s.seen = true
		return nil
	}
	c := sqltypes.TotalCompare(v, s.best)
	if (s.max && c > 0) || (!s.max && c < 0) {
		s.best = v
	}
	return nil
}

func (s *minMaxState) result(*Ctx) (sqltypes.Value, error) {
	if !s.seen {
		return sqltypes.Null, nil
	}
	return s.best, nil
}

func (s *minMaxState) mergeState(other aggState) error {
	o := other.(*minMaxState)
	if !o.seen {
		return nil
	}
	return s.add(nil, []sqltypes.Value{o.best})
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) add(_ *Ctx, args []sqltypes.Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return Errorf("avg of non-numeric value %s", v)
	}
	s.sum += f
	s.n++
	return nil
}

func (s *avgState) result(*Ctx) (sqltypes.Value, error) {
	if s.n == 0 {
		return sqltypes.Null, nil
	}
	return sqltypes.NewFloat(s.sum / float64(s.n)), nil
}

func (s *avgState) mergeState(other aggState) error {
	o := other.(*avgState)
	s.sum += o.sum
	s.n += o.n
	return nil
}

// userAggState runs a user-defined aggregate (Section VII, Example 6):
// initialize sets the state variables, accumulate runs the interpreted body
// once per row, terminate reads the result variable.
type userAggState struct {
	def  *catalog.Aggregate
	vars map[string]sqltypes.Value
}

func newUserAggState(def *catalog.Aggregate) *userAggState {
	vars := make(map[string]sqltypes.Value, len(def.State))
	for _, sv := range def.State {
		vars[sv.Name] = sv.Init
	}
	return &userAggState{def: def, vars: vars}
}

func (s *userAggState) add(ctx *Ctx, args []sqltypes.Value) error {
	if ctx.Interp == nil {
		return Errorf("user-defined aggregate %s requires an interpreter", s.def.Name)
	}
	return ctx.Interp.Accumulate(ctx, s.def, s.vars, args)
}

func (s *userAggState) result(*Ctx) (sqltypes.Value, error) {
	v, ok := s.vars[s.def.Result]
	if !ok {
		return sqltypes.Null, Errorf("aggregate %s: unknown result variable %q", s.def.Name, s.def.Result)
	}
	return v, nil
}

// AggSpec is one compiled aggregate of a HashAgg.
type AggSpec struct {
	Func     string
	Args     []Evaluator // empty for count(*)
	Distinct bool
	UserDef  *catalog.Aggregate // non-nil for user-defined aggregates
}

// Mergeable reports whether the aggregate's partial states can be merged
// (parallel aggregation eligibility): builtin, non-DISTINCT aggregates.
// DISTINCT needs a global seen-set and user-defined aggregates run an
// arbitrary interpreted body with no derivable merge function.
func (a *AggSpec) Mergeable() bool {
	if a.UserDef != nil || a.Distinct {
		return false
	}
	switch a.Func {
	case "sum", "count", "min", "max", "avg":
		return true
	default:
		return false
	}
}

func (a *AggSpec) newState() (aggState, error) {
	if a.UserDef != nil {
		return newUserAggState(a.UserDef), nil
	}
	switch a.Func {
	case "sum":
		return &sumState{}, nil
	case "count":
		return &countState{star: len(a.Args) == 0}, nil
	case "min":
		return &minMaxState{}, nil
	case "max":
		return &minMaxState{max: true}, nil
	case "avg":
		return &avgState{}, nil
	default:
		return nil, Errorf("unknown aggregate %q", a.Func)
	}
}

// HashAgg groups input rows by key expressions and computes aggregates.
// With no keys it is scalar aggregation: exactly one output row even for
// empty input.
type HashAgg struct {
	Keys   []Evaluator
	Aggs   []*AggSpec
	Child  Node
	schema []algebra.Column
}

// NewHashAgg builds a hash aggregation node with the given output schema
// (keys first, then one column per aggregate).
func NewHashAgg(keys []Evaluator, aggs []*AggSpec, child Node, schema []algebra.Column) *HashAgg {
	return &HashAgg{Keys: keys, Aggs: aggs, Child: child, schema: schema}
}

// Schema implements Node.
func (h *HashAgg) Schema() []algebra.Column { return h.schema }

type aggGroup struct {
	keyVals  []sqltypes.Value
	states   []aggState
	distinct []map[string]bool // per agg, for DISTINCT
	order    int
}

// Open implements Node.
func (h *HashAgg) Open(ctx *Ctx) (Iter, error) {
	it, err := OpenRows(h.Child, ctx)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	groups := map[string]*aggGroup{}
	// Fast path: single-column grouping keys that stay integers avoid the
	// per-row key encoding (the common case for foreign-key grouping).
	intGroups := map[int64]*aggGroup{}
	intsOnly := len(h.Keys) == 1
	nGroups := 0
	newGroup := func(keyVals []sqltypes.Value) (*aggGroup, error) {
		g := &aggGroup{keyVals: keyVals, states: make([]aggState, len(h.Aggs)),
			distinct: make([]map[string]bool, len(h.Aggs)), order: nGroups}
		nGroups++
		for i, a := range h.Aggs {
			st, err := a.newState()
			if err != nil {
				return nil, err
			}
			g.states[i] = st
			if a.Distinct {
				g.distinct[i] = map[string]bool{}
			}
		}
		return g, nil
	}
	keyVals := make([]sqltypes.Value, len(h.Keys))
	argBuf := make([]sqltypes.Value, 8)
	for {
		if err := ctx.Cancelled(); err != nil {
			return nil, err
		}
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i, k := range h.Keys {
			v, err := k(ctx, row)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		cloneKeys := func() []sqltypes.Value {
			out := make([]sqltypes.Value, len(keyVals))
			copy(out, keyVals)
			return out
		}
		var g *aggGroup
		if intsOnly && len(keyVals) == 1 && keyVals[0].Kind() == sqltypes.KindInt {
			ik := keyVals[0].Int()
			g, ok = intGroups[ik]
			if !ok {
				g, err = newGroup(cloneKeys())
				if err != nil {
					return nil, err
				}
				intGroups[ik] = g
			}
		} else {
			if intsOnly {
				// Mixed key kinds: fold the integer groups into the
				// general map and disable the fast path.
				intsOnly = false
				var buf []byte
				for ik, ig := range intGroups {
					buf = sqltypes.EncodeKey(buf[:0], sqltypes.NewInt(ik))
					groups[string(buf)] = ig
				}
				intGroups = nil
			}
			key := sqltypes.KeyOf(keyVals...)
			g, ok = groups[key]
			if !ok {
				g, err = newGroup(cloneKeys())
				if err != nil {
					return nil, err
				}
				groups[key] = g
			}
		}
		for i, a := range h.Aggs {
			if cap(argBuf) < len(a.Args) {
				argBuf = make([]sqltypes.Value, len(a.Args))
			}
			args := argBuf[:len(a.Args)]
			for j, ae := range a.Args {
				v, err := ae(ctx, row)
				if err != nil {
					return nil, err
				}
				args[j] = v
			}
			if a.Distinct {
				dk := sqltypes.KeyOf(args...)
				if g.distinct[i][dk] {
					continue
				}
				g.distinct[i][dk] = true
			}
			if err := g.states[i].add(ctx, args); err != nil {
				return nil, err
			}
		}
	}
	// Scalar aggregation over empty input yields one row of "empty" results.
	if len(h.Keys) == 0 && nGroups == 0 {
		g, err := newGroup(nil)
		if err != nil {
			return nil, err
		}
		groups[""] = g
	}
	ordered := make([]*aggGroup, 0, nGroups)
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	for _, g := range intGroups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	rows := make([]storage.Row, 0, len(ordered))
	for _, g := range ordered {
		row := make(storage.Row, 0, len(h.Keys)+len(h.Aggs))
		row = append(row, g.keyVals...)
		for _, st := range g.states {
			v, err := st.result(ctx)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return &sliceIter{rows: rows}, nil
}
