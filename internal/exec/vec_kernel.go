package exec

// Fused single-column float kernels for the vectorized hot path. An
// arithmetic chain over one column reference and float constants — the
// dominant shape of scan filters and computed projections — compiles to a
// closure over float64, so the inner loop reads one storage value, computes
// in registers, and writes one result, with no intermediate value vectors.
//
// The specialization preserves the engine's SQL semantics exactly because a
// float constant operand forces every intermediate onto the engine's float
// promotion path regardless of the column's per-row kind; NULL and
// non-numeric elements take a compiled row-expression fallback, so error
// text and NULL propagation stay identical to the generic evaluator.

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// floatFn maps one column value (promoted to float64) to the expression's
// value. A nil floatFn is the identity (a bare column reference).
type floatFn func(float64) float64

// floatConstVal unwraps a float constant operand.
func floatConstVal(e algebra.Expr) (float64, bool) {
	c, ok := e.(*algebra.Const)
	if !ok || c.Val.Kind() != sqltypes.KindFloat {
		return 0, false
	}
	return c.Val.Float(), true
}

// floatKernelExpr compiles e into (column ordinal, kernel) when e is a
// chain of +,-,*,/ over exactly one column reference and float constants.
// Division by a constant zero and variable divisors stay on the generic
// path (they must raise the engine's division-by-zero error); modulo is
// excluded because the engine computes it through int64 casts.
func floatKernelExpr(e algebra.Expr, schema []algebra.Column) (int, floatFn, bool) {
	switch x := e.(type) {
	case *algebra.ColRef:
		for i, c := range schema {
			if c.Matches(x.Qual, x.Name) {
				return i, nil, true
			}
		}
	case *algebra.Arith:
		if idx, fn, ok := floatKernelExpr(x.L, schema); ok {
			if c, okc := floatConstVal(x.R); okc {
				if g, okg := fuseConstRight(x.Op, fn, c); okg {
					return idx, g, true
				}
			}
		}
		if idx, fn, ok := floatKernelExpr(x.R, schema); ok {
			if c, okc := floatConstVal(x.L); okc {
				if g, okg := fuseConstLeft(x.Op, c, fn); okg {
					return idx, g, true
				}
			}
		}
	}
	return 0, nil, false
}

// fuseConstRight builds v ↦ fn(v) op c.
func fuseConstRight(op sqltypes.ArithOp, fn floatFn, c float64) (floatFn, bool) {
	if fn == nil {
		switch op {
		case sqltypes.OpAdd:
			return func(v float64) float64 { return v + c }, true
		case sqltypes.OpSub:
			return func(v float64) float64 { return v - c }, true
		case sqltypes.OpMul:
			return func(v float64) float64 { return v * c }, true
		case sqltypes.OpDiv:
			if c == 0 {
				return nil, false
			}
			return func(v float64) float64 { return v / c }, true
		}
		return nil, false
	}
	switch op {
	case sqltypes.OpAdd:
		return func(v float64) float64 { return fn(v) + c }, true
	case sqltypes.OpSub:
		return func(v float64) float64 { return fn(v) - c }, true
	case sqltypes.OpMul:
		return func(v float64) float64 { return fn(v) * c }, true
	case sqltypes.OpDiv:
		if c == 0 {
			return nil, false
		}
		return func(v float64) float64 { return fn(v) / c }, true
	}
	return nil, false
}

// fuseConstLeft builds v ↦ c op fn(v). Division is excluded: the divisor
// would be per-row and a zero must raise the engine's error.
func fuseConstLeft(op sqltypes.ArithOp, c float64, fn floatFn) (floatFn, bool) {
	if fn == nil {
		switch op {
		case sqltypes.OpAdd:
			return func(v float64) float64 { return c + v }, true
		case sqltypes.OpSub:
			return func(v float64) float64 { return c - v }, true
		case sqltypes.OpMul:
			return func(v float64) float64 { return c * v }, true
		}
		return nil, false
	}
	switch op {
	case sqltypes.OpAdd:
		return func(v float64) float64 { return c + fn(v) }, true
	case sqltypes.OpSub:
		return func(v float64) float64 { return c - fn(v) }, true
	case sqltypes.OpMul:
		return func(v float64) float64 { return c * fn(v) }, true
	}
	return nil, false
}

// compileArithKernel builds the fused evaluator for a kernelizable
// arithmetic expression: one column read, register arithmetic, one value
// write per live row. rowEv handles the rare non-numeric elements with the
// generic row semantics (exact error text included).
func compileArithKernel(e algebra.Expr, idx int, fn floatFn, schema []algebra.Column, r CallResolver) (VecFactory, error) {
	rowEv, err := Compile(e, schema, r)
	if err != nil {
		return nil, err
	}
	return func() VecEvaluator {
		var buf []sqltypes.Value
		var rowBuf storage.Row
		return func(ctx *Ctx, b *Batch) ([]sqltypes.Value, error) {
			if idx >= b.Width() {
				return nil, Errorf("batch too narrow for fused column %d", idx)
			}
			col := b.Cols[idx]
			buf = vecBuf(buf, b.Physical())
			n := b.Len()
			for i := 0; i < n; i++ {
				p := b.LiveAt(i)
				v := col[p]
				switch v.Kind() {
				case sqltypes.KindFloat:
					buf[p] = sqltypes.NewFloat(fn(v.Float()))
				case sqltypes.KindInt:
					buf[p] = sqltypes.NewFloat(fn(float64(v.Int())))
				case sqltypes.KindNull:
					buf[p] = sqltypes.Null
				default:
					if cap(rowBuf) < b.Width() {
						rowBuf = make(storage.Row, b.Width())
					}
					rb := rowBuf[:b.Width()]
					for j, c := range b.Cols {
						rb[j] = c[p]
					}
					out, err := rowEv(ctx, rb)
					if err != nil {
						return nil, err
					}
					buf[p] = out
				}
			}
			return buf, nil
		}
	}, nil
}

// compileCmpKernelPred builds a fused filter predicate for comparisons of a
// kernelizable side against a numeric constant: column read, register
// arithmetic and compare, Tri write — no intermediate vectors at all. An
// integer constant is admitted only against a non-trivial kernel (whose
// intermediates are float either way); against a bare integer column the
// engine compares in int64, which float64 cannot represent beyond 2^53.
func compileCmpKernelPred(x *algebra.Cmp, schema []algebra.Column, r CallResolver) (PredFactory, bool) {
	accepts, haveTable := cmpAccepts(x.Op)
	if !haveTable {
		return nil, false
	}
	cmpConst := func(e algebra.Expr, fn floatFn) (float64, bool) {
		c, ok := e.(*algebra.Const)
		if !ok {
			return 0, false
		}
		switch c.Val.Kind() {
		case sqltypes.KindFloat:
			return c.Val.Float(), true
		case sqltypes.KindInt:
			if fn != nil {
				return float64(c.Val.Int()), true
			}
		}
		return 0, false
	}
	var idx int
	var fn floatFn
	var c float64
	var flip bool
	if i, f, ok := floatKernelExpr(x.L, schema); ok {
		if k, okc := cmpConst(x.R, f); okc {
			idx, fn, c, flip = i, f, k, false
			goto build
		}
	}
	if i, f, ok := floatKernelExpr(x.R, schema); ok {
		if k, okc := cmpConst(x.L, f); okc {
			idx, fn, c, flip = i, f, k, true
			goto build
		}
	}
	return nil, false
build:
	rowEv, err := Compile(x, schema, r)
	if err != nil {
		return nil, false
	}
	return func() VecPredicate {
		var rowBuf storage.Row
		return func(ctx *Ctx, b *Batch, out []sqltypes.Tri) error {
			if idx >= b.Width() {
				return Errorf("batch too narrow for fused column %d", idx)
			}
			col := b.Cols[idx]
			n := b.Len()
			for i := 0; i < n; i++ {
				p := b.LiveAt(i)
				v := col[p]
				var xv float64
				switch v.Kind() {
				case sqltypes.KindFloat:
					xv = v.Float()
				case sqltypes.KindInt:
					xv = float64(v.Int())
				case sqltypes.KindNull:
					out[p] = sqltypes.Unknown
					continue
				default:
					if cap(rowBuf) < b.Width() {
						rowBuf = make(storage.Row, b.Width())
					}
					rb := rowBuf[:b.Width()]
					for j, cc := range b.Cols {
						rb[j] = cc[p]
					}
					rv, err := rowEv(ctx, rb)
					if err != nil {
						return err
					}
					out[p] = sqltypes.TriOf(rv)
					continue
				}
				if fn != nil {
					xv = fn(xv)
				}
				// Mirrors sqltypes.Compare's float three-way, NaN included
				// (neither branch taken → "equal").
				cmp := 0
				switch {
				case xv < c:
					cmp = -1
				case xv > c:
					cmp = 1
				}
				if flip {
					cmp = -cmp
				}
				if accepts[cmp+1] {
					out[p] = sqltypes.True
				} else {
					out[p] = sqltypes.False
				}
			}
			return nil
		}
	}, true
}
