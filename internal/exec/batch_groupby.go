package exec

import (
	"sort"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// BatchGroupBy is the vectorized grouped-aggregation operator: grouping keys
// and aggregate arguments evaluate batch-at-a-time and feed the same
// aggregate states as the row HashAgg, so results (values, and first-seen
// group order) are identical. It accepts every aggregate HashAgg accepts —
// builtins, DISTINCT, and user-defined (interpreted) aggregates — which is
// what lets grouped queries (the shape every decorrelated UDF rewrite
// produces) stay on the batch path instead of bridging to the row engine.
type BatchGroupBy struct {
	Keys   []VecFactory
	Aggs   []*AggSpec     // row specs: state construction + DISTINCT flags
	Args   [][]VecFactory // batched argument evaluators of Aggs[i]
	Child  Node
	schema []algebra.Column
}

// NewBatchGroupBy builds a vectorized grouped aggregation node.
func NewBatchGroupBy(keys []VecFactory, aggs []*AggSpec, args [][]VecFactory, child Node, schema []algebra.Column) *BatchGroupBy {
	return &BatchGroupBy{Keys: keys, Aggs: aggs, Args: args, Child: child, schema: schema}
}

// Schema implements Node.
func (g *BatchGroupBy) Schema() []algebra.Column { return g.schema }

// Open implements Node.
func (g *BatchGroupBy) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(g, ctx) }

// OpenBatch implements BatchNode.
func (g *BatchGroupBy) OpenBatch(ctx *Ctx) (BatchIter, error) {
	in, err := OpenBatches(g.Child, ctx)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	gt := newGroupTable(g.Aggs, len(g.Keys))
	if err := gt.consume(ctx, in, Instantiate(g.Keys), instantiateArgs(g.Args)); err != nil {
		return nil, err
	}
	rows, err := gt.rows(ctx, len(g.Keys) == 0)
	if err != nil {
		return nil, err
	}
	return &rowFeedIter{rows: rows, width: len(g.schema)}, nil
}

// instantiateArgs materializes per-execution argument evaluators.
func instantiateArgs(args [][]VecFactory) [][]VecEvaluator {
	out := make([][]VecEvaluator, len(args))
	for i, fs := range args {
		out[i] = Instantiate(fs)
	}
	return out
}

// ---------------------------------------------------------------------------
// groupTable
// ---------------------------------------------------------------------------

// groupTable accumulates aggregate groups from batches. It mirrors the row
// HashAgg exactly (including the single-integer-key fast path and first-seen
// group ordering) and additionally supports merging another table's partial
// groups, which is what the parallel group-by's merge phase uses.
type groupTable struct {
	aggs      []*AggSpec
	nKeys     int
	groups    map[string]*aggGroup
	intGroups map[int64]*aggGroup
	intsOnly  bool
	n         int
}

func newGroupTable(aggs []*AggSpec, nKeys int) *groupTable {
	return &groupTable{
		aggs:      aggs,
		nKeys:     nKeys,
		groups:    map[string]*aggGroup{},
		intGroups: map[int64]*aggGroup{},
		intsOnly:  nKeys == 1,
	}
}

func (g *groupTable) newGroup(keyVals []sqltypes.Value) (*aggGroup, error) {
	grp := &aggGroup{keyVals: keyVals, states: make([]aggState, len(g.aggs)),
		distinct: make([]map[string]bool, len(g.aggs)), order: g.n}
	g.n++
	for i, a := range g.aggs {
		st, err := a.newState()
		if err != nil {
			return nil, err
		}
		grp.states[i] = st
		if a.Distinct {
			grp.distinct[i] = map[string]bool{}
		}
	}
	return grp, nil
}

// find returns the group for keyVals, creating it when absent. When adopt is
// non-nil a missing group installs adopt (re-ordered to this table's
// sequence) instead of constructing fresh states — the merge path. keyVals
// are cloned on insertion unless adopt already owns them.
func (g *groupTable) find(keyVals []sqltypes.Value, adopt *aggGroup) (*aggGroup, bool, error) {
	install := func() (*aggGroup, error) {
		if adopt != nil {
			adopt.order = g.n
			g.n++
			return adopt, nil
		}
		clone := make([]sqltypes.Value, len(keyVals))
		copy(clone, keyVals)
		return g.newGroup(clone)
	}
	if g.intsOnly && len(keyVals) == 1 && keyVals[0].Kind() == sqltypes.KindInt {
		ik := keyVals[0].Int()
		if grp, ok := g.intGroups[ik]; ok {
			return grp, false, nil
		}
		grp, err := install()
		if err != nil {
			return nil, false, err
		}
		g.intGroups[ik] = grp
		return grp, true, nil
	}
	if g.intsOnly {
		// Mixed key kinds: fold the integer groups into the general map and
		// disable the fast path (exactly like HashAgg).
		g.intsOnly = false
		var buf []byte
		for ik, ig := range g.intGroups {
			buf = sqltypes.EncodeKey(buf[:0], sqltypes.NewInt(ik))
			g.groups[string(buf)] = ig
		}
		g.intGroups = nil
	}
	key := sqltypes.KeyOf(keyVals...)
	if grp, ok := g.groups[key]; ok {
		return grp, false, nil
	}
	grp, err := install()
	if err != nil {
		return nil, false, err
	}
	g.groups[key] = grp
	return grp, true, nil
}

// consume drains a batch iterator into the table, evaluating keys and
// aggregate arguments batch-at-a-time.
func (g *groupTable) consume(ctx *Ctx, in BatchIter, keys []VecEvaluator, args [][]VecEvaluator) error {
	keyVecs := make([][]sqltypes.Value, len(keys))
	keyBuf := make([]sqltypes.Value, len(keys))
	argVecs := make([][][]sqltypes.Value, len(args))
	for i := range args {
		argVecs[i] = make([][]sqltypes.Value, len(args[i]))
	}
	argBuf := make([]sqltypes.Value, 8)
	for {
		if err := ctx.Cancelled(); err != nil {
			return err
		}
		b, ok, err := in.NextBatch(DefaultBatchSize)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i, k := range keys {
			v, err := k(ctx, b)
			if err != nil {
				return err
			}
			keyVecs[i] = v
		}
		for i := range args {
			for c, ev := range args[i] {
				v, err := ev(ctx, b)
				if err != nil {
					return err
				}
				argVecs[i][c] = v
			}
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			p := b.LiveAt(r)
			for i := range keys {
				keyBuf[i] = keyVecs[i][p]
			}
			grp, _, err := g.find(keyBuf, nil)
			if err != nil {
				return err
			}
			for i, spec := range g.aggs {
				vecs := argVecs[i]
				if cap(argBuf) < len(vecs) {
					argBuf = make([]sqltypes.Value, len(vecs))
				}
				rowArgs := argBuf[:len(vecs)]
				for c := range vecs {
					rowArgs[c] = vecs[c][p]
				}
				if spec.Distinct {
					dk := sqltypes.KeyOf(rowArgs...)
					if grp.distinct[i][dk] {
						continue
					}
					grp.distinct[i][dk] = true
				}
				if err := grp.states[i].add(ctx, rowArgs); err != nil {
					return err
				}
			}
		}
	}
}

// absorb merges another table's groups into g, in the other table's group
// order. All aggregate states must be mergeable (the parallel planner
// guarantees it); missing groups are adopted wholesale.
func (g *groupTable) absorb(o *groupTable) error {
	for _, src := range o.ordered() {
		dst, created, err := g.find(src.keyVals, src)
		if err != nil {
			return err
		}
		if created {
			continue
		}
		for i := range g.aggs {
			m, ok := dst.states[i].(mergeableState)
			if !ok {
				return Errorf("aggregate %q has no mergeable state", g.aggs[i].Func)
			}
			if err := m.mergeState(src.states[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ordered returns the groups in first-seen order.
func (g *groupTable) ordered() []*aggGroup {
	out := make([]*aggGroup, 0, g.n)
	for _, grp := range g.groups {
		out = append(out, grp)
	}
	for _, grp := range g.intGroups {
		out = append(out, grp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	return out
}

// rows materializes the result rows (keys then aggregate results). With
// scalarOneRow set an empty input still yields the single row of "empty"
// aggregate results, matching scalar-aggregation semantics.
func (g *groupTable) rows(ctx *Ctx, scalarOneRow bool) ([]storage.Row, error) {
	if scalarOneRow && g.n == 0 {
		grp, err := g.newGroup(nil)
		if err != nil {
			return nil, err
		}
		g.groups[""] = grp
	}
	ordered := g.ordered()
	rows := make([]storage.Row, 0, len(ordered))
	for _, grp := range ordered {
		row := make(storage.Row, 0, g.nKeys+len(g.aggs))
		row = append(row, grp.keyVals...)
		for _, st := range grp.states {
			v, err := st.result(ctx)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
