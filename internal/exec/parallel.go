// Morsel-driven intra-query parallelism for the vectorized path (after
// Leis et al.): a scan is partitioned into row-range morsels handed out by
// an atomic dispenser, and a pipeline segment — scan, filters, projections
// and hash-join probes — runs on N workers, each with its own instantiated
// evaluators and execution context. Pipeline breakers sit above (Exchange
// merges worker output into one stream) or are parallelism-aware
// themselves (parallelGroupBy builds per-worker partial aggregation states
// and merges them). Plans stay immutable: all per-execution parallel state
// lives in a segState built inside OpenBatch.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// MorselRows is the number of rows per morsel: a few batches' worth, so the
// dispenser is touched rarely but small tables still split across workers.
// It is a variable (not a constant) so tests can shrink it to force
// multi-worker execution over small fixtures; production code never writes
// it after init.
var MorselRows = 4 * DefaultBatchSize

// morselSource hands out row-ordinal ranges of a scanned table to workers.
// Ordinals [0, segRows) address the pinned version's column segments
// (relying on the storage invariant that every segment but the last holds
// exactly storage.SegmentRows rows); ordinals past segRows address the
// transaction overlay, scanned after the published data.
type morselSource struct {
	segs    []*storage.Segment
	segRows int // total rows across segs
	overlay []storage.Row
	total   int   // segRows + len(overlay)
	next    int64 // atomic cursor (in row ordinals)
}

func newMorselSource(ver *storage.TableVersion, overlay []storage.Row) *morselSource {
	m := &morselSource{segs: ver.Segments(), segRows: ver.RowCount(), overlay: overlay}
	m.total = m.segRows + len(overlay)
	return m
}

// grab claims the next morsel; ok=false when the table is exhausted.
func (m *morselSource) grab() (lo, hi int, ok bool) {
	size := MorselRows
	end := atomic.AddInt64(&m.next, int64(size))
	lo = int(end) - size
	if lo >= m.total {
		return 0, 0, false
	}
	hi = int(end)
	if hi > m.total {
		hi = m.total
	}
	return lo, hi, true
}

// morselCount returns how many morsels the source will hand out.
func (m *morselSource) morselCount() int {
	return (m.total + MorselRows - 1) / MorselRows
}

// segState is the per-execution shared state of a parallel segment: the
// scan's morsel dispenser and the hash-join build tables, constructed once
// in prepare and then read-only for all workers.
type segState struct {
	degree int
	src    *morselSource
	joins  map[*segHashJoin]*joinTable
}

// workers returns the worker count for this execution: the configured
// degree, clamped to the available morsels so tiny tables do not spawn idle
// goroutines (and always at least one).
func (st *segState) workers() int {
	w := st.degree
	if st.src != nil {
		if mc := st.src.morselCount(); mc < w {
			w = mc
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// segment is a per-worker pipeline recipe: prepare runs the shared
// once-per-execution work (morsel dispenser, hash-join builds), then open
// instantiates one worker's iterator with private evaluators.
type segment interface {
	prepare(ctx *Ctx, st *segState) error
	open(ctx *Ctx, st *segState) (BatchIter, error)
	schema() []algebra.Column
	describe() string
}

// ---------------------------------------------------------------------------
// Segment implementations
// ---------------------------------------------------------------------------

type segScan struct {
	tab  *storage.Table
	cols []algebra.Column
}

func (s *segScan) prepare(ctx *Ctx, st *segState) error {
	ver, overlay := ctx.TableVersion(s.tab)
	st.src = newMorselSource(ver, overlay)
	storage.NoteZeroCopyScan()
	return nil
}

func (s *segScan) open(ctx *Ctx, st *segState) (BatchIter, error) {
	return contractWrap(&morselScanIter{src: st.src, width: len(s.cols), ctx: ctx}), nil
}

func (s *segScan) schema() []algebra.Column { return s.cols }
func (s *segScan) describe() string         { return "scan(" + s.tab.Meta.Name + ")" }

// morselScanIter reads batches out of morsels claimed from the shared
// dispenser. Batches over published data are zero-copy segment slices
// (clamped at segment boundaries); overlay rows pivot through a private
// buffer.
type morselScanIter struct {
	src    *morselSource
	width  int
	ctx    *Ctx
	lo, hi int    // remaining range of the current morsel
	out    Batch  // reused batch header; Cols alias segment storage
	buf    *Batch // pivot buffer, only for overlay rows
}

func (m *morselScanIter) NextBatch(max int) (*Batch, bool, error) {
	// Checked per batch, so a cancelled worker stops within the current
	// morsel; the dispenser itself stops handing out morsels because every
	// worker's context shares the same Done channel.
	if err := m.ctx.Cancelled(); err != nil {
		return nil, false, err
	}
	if m.lo >= m.hi {
		lo, hi, ok := m.src.grab()
		if !ok {
			return nil, false, nil
		}
		m.lo, m.hi = lo, hi
		m.ctx.Counters.Morsels++
	}
	src := m.src
	if m.lo < src.segRows {
		sg := src.segs[m.lo/storage.SegmentRows]
		off := m.lo % storage.SegmentRows
		end := off + max
		if lim := off + (m.hi - m.lo); lim < end {
			end = lim
		}
		if sg.Len() < end {
			end = sg.Len()
		}
		if m.out.Cols == nil {
			m.out.Cols = make([][]sqltypes.Value, m.width)
		}
		for c := 0; c < m.width; c++ {
			m.out.Cols[c] = sg.Col(c)[off:end]
		}
		m.out.Sel = nil
		m.out.n = end - off
		m.lo += m.out.n
		return &m.out, true, nil
	}
	lo := m.lo - src.segRows
	end := lo + max
	if lim := lo + (m.hi - m.lo); lim < end {
		end = lim
	}
	if len(src.overlay) < end {
		end = len(src.overlay)
	}
	if m.buf == nil {
		m.buf = NewBatch(m.width, max)
	}
	b := m.buf
	b.Sel = nil
	b.n = end - lo
	chunk := src.overlay[lo:end]
	for c := 0; c < m.width; c++ {
		col := b.Cols[c][:0]
		for _, r := range chunk {
			col = append(col, r[c])
		}
		b.Cols[c] = col
	}
	m.lo += b.n
	return b, true, nil
}

func (m *morselScanIter) Close() error { return nil }

type segFilter struct {
	pred  PredFactory
	child segment
}

func (s *segFilter) prepare(ctx *Ctx, st *segState) error { return s.child.prepare(ctx, st) }

func (s *segFilter) open(ctx *Ctx, st *segState) (BatchIter, error) {
	in, err := s.child.open(ctx, st)
	if err != nil {
		return nil, err
	}
	return contractWrap(&batchFilterIter{pred: s.pred(), in: in, ctx: ctx}), nil
}

func (s *segFilter) schema() []algebra.Column { return s.child.schema() }
func (s *segFilter) describe() string         { return s.child.describe() + "→filter" }

type segProject struct {
	exprs []VecFactory
	child segment
	cols  []algebra.Column
}

func (s *segProject) prepare(ctx *Ctx, st *segState) error { return s.child.prepare(ctx, st) }

func (s *segProject) open(ctx *Ctx, st *segState) (BatchIter, error) {
	in, err := s.child.open(ctx, st)
	if err != nil {
		return nil, err
	}
	return contractWrap(&batchProjectIter{exprs: Instantiate(s.exprs), in: in, ctx: ctx}), nil
}

func (s *segProject) schema() []algebra.Column { return s.cols }
func (s *segProject) describe() string         { return s.child.describe() + "→project" }

// segHashJoin probes a shared hash table from each worker; the build side
// runs once per execution in prepare, populated with one goroutine per
// partition.
type segHashJoin struct {
	j     *BatchHashJoin
	child segment // probe (left) side
}

func (s *segHashJoin) prepare(ctx *Ctx, st *segState) error {
	if err := s.child.prepare(ctx, st); err != nil {
		return err
	}
	jt, err := buildJoinTable(ctx, s.j.R, s.j.RKeys, st.degree)
	if err != nil {
		return err
	}
	st.joins[s] = jt
	return nil
}

func (s *segHashJoin) open(ctx *Ctx, st *segState) (BatchIter, error) {
	in, err := s.child.open(ctx, st)
	if err != nil {
		return nil, err
	}
	return contractWrap(newBatchHashJoinIter(s.j, ctx, in, st.joins[s])), nil
}

func (s *segHashJoin) schema() []algebra.Column { return s.j.schema }
func (s *segHashJoin) describe() string {
	return s.child.describe() + "→probe(" + s.j.Kind.String() + ")"
}

// segmentize converts a batch operator chain into a per-worker segment
// recipe. Supported: scan leaves, filters, non-DISTINCT projections, and
// hash joins (probe side in the segment, build side shared). Anything else
// — pipeline breakers, row operators, correlated applies — ends the
// segment.
func segmentize(n Node) (segment, bool) {
	switch x := n.(type) {
	case *BatchScan:
		return &segScan{tab: x.Tab, cols: x.schema}, true
	case *BatchFilter:
		child, ok := segmentize(x.Child)
		if !ok {
			return nil, false
		}
		return &segFilter{pred: x.Pred, child: child}, true
	case *BatchProject:
		if x.Dedup {
			return nil, false // DISTINCT needs a global seen-set
		}
		child, ok := segmentize(x.Child)
		if !ok {
			return nil, false
		}
		return &segProject{exprs: x.Exprs, child: child, cols: x.schema}, true
	case *BatchHashJoin:
		child, ok := segmentize(x.L)
		if !ok {
			return nil, false
		}
		return &segHashJoin{j: x, child: child}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

// Exchange runs a pipeline segment on N workers and merges their output
// batches into one stream. Row order across workers is nondeterministic
// (parents that need an order sort above the exchange).
type Exchange struct {
	Degree int
	Seg    segment
	sch    []algebra.Column
}

// Schema implements Node.
func (e *Exchange) Schema() []algebra.Column { return e.sch }

// Open implements Node.
func (e *Exchange) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(e, ctx) }

// Describe names the segment for EXPLAIN.
func (e *Exchange) Describe() string {
	return fmt.Sprintf("Exchange(%s, degree=%d)", e.Seg.describe(), e.Degree)
}

// OpenBatch implements BatchNode: it prepares the shared segment state,
// spawns the workers, and returns the merging iterator.
func (e *Exchange) OpenBatch(ctx *Ctx) (BatchIter, error) {
	st := &segState{degree: e.Degree, joins: map[*segHashJoin]*joinTable{}}
	if err := e.Seg.prepare(ctx, st); err != nil {
		return nil, err
	}
	workers := st.workers()
	x := &exchangeIter{
		parent: ctx,
		width:  len(e.sch),
		out:    make(chan []storage.Row, workers),
		errc:   make(chan error, workers),
		done:   make(chan struct{}),
	}
	ctx.Counters.Workers += int64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wctx := ctx.forkWorker()
		x.wctxs = append(x.wctxs, wctx)
		wg.Add(1)
		go func(wctx *Ctx) {
			defer wg.Done()
			it, err := e.Seg.open(wctx, st)
			if err != nil {
				x.errc <- err
				return
			}
			if wctx.prof != nil {
				// Attribute the worker's whole pipeline to the Exchange; the
				// private profiler merges into the parent's as worker stats.
				it = &profBatchIter{in: it, st: wctx.prof.statsFor(e)}
			}
			defer it.Close()
			for {
				select {
				case <-x.done:
					return
				default:
				}
				b, ok, err := it.NextBatch(DefaultBatchSize)
				if err != nil {
					x.errc <- err
					return
				}
				if !ok {
					return
				}
				// Batches are owned by the worker's iterator: materialize
				// before crossing the channel.
				rows := b.AppendTo(make([]storage.Row, 0, b.Len()))
				select {
				case x.out <- rows:
				case <-x.done:
					return
				}
			}
		}(wctx)
	}
	go func() {
		wg.Wait()
		close(x.out)
	}()
	return x, nil
}

// exchangeIter merges worker row chunks into batches of the requested size.
type exchangeIter struct {
	parent  *Ctx
	wctxs   []*Ctx
	width   int
	out     chan []storage.Row
	errc    chan error
	done    chan struct{}
	pending []storage.Row
	pos     int
	buf     *Batch
	stopped bool
	merged  bool
}

func (x *exchangeIter) NextBatch(max int) (*Batch, bool, error) {
	for x.pos >= len(x.pending) {
		chunk, ok := <-x.out
		if !ok {
			x.finish()
			select {
			case err := <-x.errc:
				return nil, false, err
			default:
				// Workers can also exit by observing cancellation before
				// producing an error (e.g. parked on a send when the parent
				// closed done): report the cancellation, not a silent EOS.
				if err := x.parent.Cancelled(); err != nil {
					return nil, false, err
				}
				return nil, false, nil
			}
		}
		x.pending, x.pos = chunk, 0
	}
	n := len(x.pending) - x.pos
	if n > max {
		n = max
	}
	if x.buf == nil {
		x.buf = NewBatch(x.width, max)
	}
	b := x.buf
	b.Sel = nil
	b.n = n
	chunk := x.pending[x.pos : x.pos+n]
	for c := 0; c < x.width; c++ {
		col := b.Cols[c][:0]
		for _, r := range chunk {
			col = append(col, r[c])
		}
		b.Cols[c] = col
	}
	x.pos += n
	return b, true, nil
}

// finish absorbs worker counters exactly once, after all workers exited.
func (x *exchangeIter) finish() {
	if x.merged {
		return
	}
	x.merged = true
	for _, w := range x.wctxs {
		x.parent.Counters.absorb(w.Counters)
		if x.parent.prof != nil {
			x.parent.prof.absorbWorker(w.prof)
		}
	}
}

func (x *exchangeIter) Close() error {
	if !x.stopped {
		x.stopped = true
		close(x.done)
	}
	// Unblock any worker parked on a send, then wait for the channel close
	// (the goroutine that observes wg completion) before absorbing counters.
	for range x.out {
	}
	x.finish()
	return nil
}

// ---------------------------------------------------------------------------
// parallelGroupBy
// ---------------------------------------------------------------------------

// parallelGroupBy aggregates a pipeline segment with per-worker partial
// group tables merged after all workers finish. Only mergeable (builtin
// non-DISTINCT) aggregates are lowered onto it. With no keys it is parallel
// scalar aggregation (one output row even for empty input).
type parallelGroupBy struct {
	keys   []VecFactory
	aggs   []*AggSpec
	args   [][]VecFactory
	seg    segment
	degree int
	sch    []algebra.Column
}

// Schema implements Node.
func (pg *parallelGroupBy) Schema() []algebra.Column { return pg.sch }

// Open implements Node.
func (pg *parallelGroupBy) Open(ctx *Ctx) (Iter, error) { return openRowsViaBatches(pg, ctx) }

// Describe names the operator for EXPLAIN.
func (pg *parallelGroupBy) Describe() string {
	kind := "ParallelGroupBy"
	if len(pg.keys) == 0 {
		kind = "ParallelScalarAgg"
	}
	return fmt.Sprintf("%s(%s, degree=%d)", kind, pg.seg.describe(), pg.degree)
}

// OpenBatch implements BatchNode. Aggregation is a pipeline breaker, so the
// whole parallel phase runs here and the returned iterator serves the
// materialized groups.
func (pg *parallelGroupBy) OpenBatch(ctx *Ctx) (BatchIter, error) {
	st := &segState{degree: pg.degree, joins: map[*segHashJoin]*joinTable{}}
	if err := pg.seg.prepare(ctx, st); err != nil {
		return nil, err
	}
	workers := st.workers()
	ctx.Counters.Workers += int64(workers)
	tables := make([]*groupTable, workers)
	wctxs := make([]*Ctx, workers)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wctx := ctx.forkWorker()
		wctxs[w] = wctx
		wg.Add(1)
		go func(w int, wctx *Ctx) {
			defer wg.Done()
			it, err := pg.seg.open(wctx, st)
			if err != nil {
				errc <- err
				return
			}
			if wctx.prof != nil {
				it = &profBatchIter{in: it, st: wctx.prof.statsFor(pg)}
			}
			defer it.Close()
			gt := newGroupTable(pg.aggs, len(pg.keys))
			if err := gt.consume(wctx, it, Instantiate(pg.keys), instantiateArgs(pg.args)); err != nil {
				errc <- err
				return
			}
			tables[w] = gt
		}(w, wctx)
	}
	wg.Wait()
	for _, w := range wctxs {
		ctx.Counters.absorb(w.Counters)
		if ctx.prof != nil {
			ctx.prof.absorbWorker(w.prof)
		}
	}
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	final := tables[0]
	for _, gt := range tables[1:] {
		if err := final.absorb(gt); err != nil {
			return nil, err
		}
	}
	rows, err := final.rows(ctx, len(pg.keys) == 0)
	if err != nil {
		return nil, err
	}
	return &rowFeedIter{rows: rows, width: len(pg.sch)}, nil
}

// ---------------------------------------------------------------------------
// Parallelize
// ---------------------------------------------------------------------------

func allMergeable(aggs []*AggSpec) bool {
	for _, a := range aggs {
		if !a.Mergeable() {
			return false
		}
	}
	return true
}

// Parallelize rewrites a vectorized physical plan for intra-query
// parallelism with the given degree: pipeline segments become Exchange
// operators, and grouped/scalar aggregations over a segment become parallel
// aggregations with per-worker partial states. Operators without a
// parallel-safe decomposition keep their serial form (notably LIMIT, whose
// first-N semantics would pick a nondeterministic subset, and DISTINCT
// projections, which need a global seen-set); the rewrite then recurses
// into their order-insensitive children where possible. Returns the
// (possibly rewritten) root, one EXPLAIN note per parallel operator
// introduced, and whether anything was rewritten.
func Parallelize(n Node, degree int) (Node, []string, bool) {
	if degree <= 1 {
		return n, nil, false
	}
	return parallelize(n, degree)
}

func parallelize(n Node, degree int) (Node, []string, bool) {
	if seg, ok := segmentize(n); ok {
		ex := &Exchange{Degree: degree, Seg: seg, sch: n.Schema()}
		return ex, []string{ex.Describe()}, true
	}
	switch x := n.(type) {
	case *BatchGroupBy:
		if allMergeable(x.Aggs) {
			if seg, ok := segmentize(x.Child); ok {
				pg := &parallelGroupBy{keys: x.Keys, aggs: x.Aggs, args: x.Args,
					seg: seg, degree: degree, sch: x.schema}
				return pg, []string{pg.Describe()}, true
			}
		}
		if child, notes, ok := parallelize(x.Child, degree); ok {
			cp := *x
			cp.Child = child
			return &cp, notes, true
		}
	case *BatchScalarAgg:
		if allMergeable(x.Aggs) {
			if seg, ok := segmentize(x.Child); ok {
				pg := &parallelGroupBy{aggs: x.Aggs, args: x.Args,
					seg: seg, degree: degree, sch: x.schema}
				return pg, []string{pg.Describe()}, true
			}
		}
		if child, notes, ok := parallelize(x.Child, degree); ok {
			cp := *x
			cp.Child = child
			return &cp, notes, true
		}
	case *BatchHashJoin:
		// Not segmentizable as a whole (e.g. an aggregation below the
		// probe): parallelize the two inputs independently.
		l, lNotes, lok := parallelize(x.L, degree)
		r, rNotes, rok := parallelize(x.R, degree)
		if lok || rok {
			cp := *x
			cp.L, cp.R = l, r
			return &cp, append(lNotes, rNotes...), true
		}
	case *BatchFilter:
		if child, notes, ok := parallelize(x.Child, degree); ok {
			cp := *x
			cp.Child = child
			return &cp, notes, true
		}
	case *BatchProject:
		if child, notes, ok := parallelize(x.Child, degree); ok {
			cp := *x
			cp.Child = child
			return &cp, notes, true
		}
	case *Sort:
		if child, notes, ok := parallelize(x.Child, degree); ok {
			cp := *x
			cp.Child = child
			return &cp, notes, true
		}
	case *UnionAll:
		l, lNotes, lok := parallelize(x.L, degree)
		r, rNotes, rok := parallelize(x.R, degree)
		if lok || rok {
			cp := *x
			cp.L, cp.R = l, r
			return &cp, append(lNotes, rNotes...), true
		}
	}
	return n, nil, false
}
