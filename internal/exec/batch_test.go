package exec

// Executor equivalence: every batch operator must produce byte-identical
// results (values AND order) to its row counterpart, across batch
// boundaries, on empty inputs, with NULLs, and for every join kind. The
// tests drive NextBatch with tiny batch sizes so operator state that spans
// batches (limits, dedup, join buckets) is exercised.

import (
	"fmt"
	"strings"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// drainWithBatchSize drains a node through its batch path using a specific
// per-call batch size.
func drainWithBatchSize(t *testing.T, n Node, ctx *Ctx, size int) []storage.Row {
	t.Helper()
	bi, err := OpenBatches(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer bi.Close()
	var out []storage.Row
	for {
		b, ok, err := bi.NextBatch(size)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = b.AppendTo(out)
	}
}

// assertIdenticalRows requires the two results to be equal value-for-value
// in the same order (byte-identical under the key encoding).
func assertIdenticalRows(t *testing.T, got, want []storage.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row counts differ: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if sqltypes.KeyOf(got[i]...) != sqltypes.KeyOf(want[i]...) {
			t.Fatalf("row %d differs: got %v, want %v", i, got[i], want[i])
		}
	}
}

// rowsWithNulls builds rows where -1 stands for NULL.
func rowsWithNulls(vals [][]int64) []storage.Row {
	out := make([]storage.Row, len(vals))
	for i, r := range vals {
		row := make(storage.Row, len(r))
		for j, v := range r {
			if v == -1 {
				row[j] = sqltypes.Null
			} else {
				row[j] = sqltypes.NewInt(v)
			}
		}
		out[i] = row
	}
	return out
}

func col(name string) *algebra.ColRef { return &algebra.ColRef{Name: name} }
func lit(v int64) *algebra.Const      { return &algebra.Const{Val: sqltypes.NewInt(v)} }
func cmp(op sqltypes.CmpOp, l, r algebra.Expr) *algebra.Cmp {
	return &algebra.Cmp{Op: op, L: l, R: r}
}

// filterPair builds the row and batch filter over the same input.
func filterPair(t *testing.T, pred algebra.Expr, in Node) (Node, Node) {
	t.Helper()
	rowEv, err := Compile(pred, in.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	vecEv, err := CompilePred(pred, in.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Filter{Pred: rowEv, Child: in}, &BatchFilter{Pred: vecEv, Child: in}
}

func TestBatchFilterEquivalence(t *testing.T) {
	sc := schema2("a", "b")
	cases := []struct {
		name string
		rows [][]int64
		pred algebra.Expr
	}{
		{"empty input", nil, cmp(sqltypes.CmpGT, col("b"), lit(5))},
		{"all pass", [][]int64{{1, 10}, {2, 20}}, cmp(sqltypes.CmpGT, col("b"), lit(5))},
		{"none pass", [][]int64{{1, 1}, {2, 2}}, cmp(sqltypes.CmpGT, col("b"), lit(5))},
		{"nulls are not true", [][]int64{{1, 10}, {2, -1}, {3, 30}, {4, -1}},
			cmp(sqltypes.CmpGT, col("b"), lit(5))},
		{"and with null operand", [][]int64{{1, 10}, {2, -1}, {3, 2}},
			&algebra.Logic{Op: algebra.LogicAnd,
				L: cmp(sqltypes.CmpGT, col("b"), lit(5)),
				R: cmp(sqltypes.CmpLT, col("a"), lit(3))}},
		{"or with null operand", [][]int64{{1, 10}, {2, -1}, {3, 2}},
			&algebra.Logic{Op: algebra.LogicOr,
				L: cmp(sqltypes.CmpGT, col("b"), lit(15)),
				R: cmp(sqltypes.CmpLT, col("a"), lit(2))}},
		{"not", [][]int64{{1, 10}, {2, -1}, {3, 2}},
			&algebra.Not{E: cmp(sqltypes.CmpGT, col("b"), lit(5))}},
		{"is null", [][]int64{{1, 10}, {2, -1}, {3, 2}},
			&algebra.IsNull{E: col("b")}},
		{"is not null", [][]int64{{1, 10}, {2, -1}, {3, 2}},
			&algebra.IsNull{E: col("b"), Neg: true}},
		{"guarded division short-circuits", [][]int64{{0, 8}, {2, 8}, {0, 8}},
			&algebra.Logic{Op: algebra.LogicAnd,
				L: cmp(sqltypes.CmpNE, col("a"), lit(0)),
				R: cmp(sqltypes.CmpGT, &algebra.Arith{Op: sqltypes.OpDiv, L: col("b"), R: col("a")}, lit(1))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := NewValues(rowsWithNulls(tc.rows), sc)
			rowPlan, batchPlan := filterPair(t, tc.pred, in)
			want, err := Drain(rowPlan, NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 3, 1024} {
				got := drainWithBatchSize(t, batchPlan, NewCtx(nil), size)
				assertIdenticalRows(t, got, want)
			}
		})
	}
}

func TestBatchProjectEquivalence(t *testing.T) {
	sc := schema2("a", "b")
	exprs := []algebra.Expr{
		&algebra.Arith{Op: sqltypes.OpMul, L: col("a"), R: lit(3)},
		&algebra.Case{
			Whens: []algebra.CaseWhen{{Cond: cmp(sqltypes.CmpGT, col("b"), lit(10)), Then: lit(1)}},
			Else:  lit(0),
		},
		&algebra.IsNull{E: col("b")},
	}
	outSchema := schema2("x", "y", "z")
	for _, tc := range []struct {
		name  string
		rows  [][]int64
		dedup bool
	}{
		{"empty", nil, false},
		{"nulls propagate", [][]int64{{1, 5}, {-1, 20}, {3, -1}}, false},
		{"dedup across batches", [][]int64{{1, 5}, {1, 5}, {2, 20}, {1, 5}, {2, 20}, {3, -1}}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := NewValues(rowsWithNulls(tc.rows), sc)
			rowEvs, err := CompileAll(exprs, sc, nil)
			if err != nil {
				t.Fatal(err)
			}
			vecEvs, err := CompileVecAll(exprs, sc, nil)
			if err != nil {
				t.Fatal(err)
			}
			rowPlan := NewProject(rowEvs, tc.dedup, in, outSchema)
			batchPlan := NewBatchProject(vecEvs, tc.dedup, in, outSchema)
			want, err := Drain(rowPlan, NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 2, 1024} {
				got := drainWithBatchSize(t, batchPlan, NewCtx(nil), size)
				assertIdenticalRows(t, got, want)
			}
		})
	}
}

func TestBatchLimitEquivalence(t *testing.T) {
	sc := schema2("a")
	var rows [][]int64
	for i := int64(1); i <= 10; i++ {
		rows = append(rows, []int64{i})
	}
	for _, tc := range []struct {
		name string
		n    int64
		rows [][]int64
	}{
		{"empty input", 5, nil},
		{"limit 0", 0, rows},
		{"limit mid-batch", 5, rows}, // batch size 3: limit falls inside the 2nd batch
		{"limit at batch edge", 6, rows},
		{"limit beyond input", 50, rows},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := NewValues(rowsWithNulls(tc.rows), sc)
			rowPlan := &Limit{N: tc.n, Child: in}
			batchPlan := &BatchLimit{N: tc.n, Child: in}
			want, err := Drain(rowPlan, NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 3, 1024} {
				got := drainWithBatchSize(t, batchPlan, NewCtx(nil), size)
				assertIdenticalRows(t, got, want)
			}
		})
	}
}

// TestBatchLimitStopsPulling verifies the batch limit does not read past the
// limit (it must clamp its requests, not drain the child).
func TestBatchLimitStopsPulling(t *testing.T) {
	sc := schema2("a")
	rows := rowsWithNulls([][]int64{{1}, {2}, {3}, {4}})
	in := NewValues(rows, sc)
	bi, err := OpenBatches(&BatchLimit{N: 2, Child: in}, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer bi.Close()
	b, ok, err := bi.NextBatch(1024)
	if err != nil || !ok {
		t.Fatalf("first batch: ok=%v err=%v", ok, err)
	}
	if b.Len() != 2 {
		t.Fatalf("batch len = %d, want 2", b.Len())
	}
	if _, ok, _ := bi.NextBatch(1024); ok {
		t.Fatal("limit returned rows past N")
	}
}

func TestBatchHashJoinEquivalence(t *testing.T) {
	lsc := schema2("lk", "lv")
	rsc := schema2("rk", "rv")
	lRows := [][]int64{{1, 10}, {2, 20}, {2, 21}, {3, 30}, {-1, 40}, {5, 50}}
	rRows := [][]int64{{2, 200}, {2, 201}, {3, 300}, {-1, 400}, {7, 700}, {2, 202}}
	kinds := []algebra.JoinKind{algebra.InnerJoin, algebra.LeftOuterJoin,
		algebra.SemiJoin, algebra.AntiJoin}
	for _, kind := range kinds {
		for _, tc := range []struct {
			name     string
			l, r     [][]int64
			residual algebra.Expr
		}{
			{"dup keys both sides", lRows, rRows, nil},
			{"empty build side", lRows, nil, nil},
			{"empty probe side", nil, rRows, nil},
			{"both empty", nil, nil, nil},
			{"residual", lRows, rRows,
				cmp(sqltypes.CmpGT, &algebra.ColRef{Name: "rv"}, lit(200))},
		} {
			t.Run(kind.String()+"/"+tc.name, func(t *testing.T) {
				l := NewValues(rowsWithNulls(tc.l), lsc)
				r := NewValues(rowsWithNulls(tc.r), rsc)
				joined := append(append([]algebra.Column{}, lsc...), rsc...)
				var residual Evaluator
				if tc.residual != nil {
					var err error
					residual, err = Compile(tc.residual, joined, nil)
					if err != nil {
						t.Fatal(err)
					}
				}
				lKeyRow, err := Compile(col("lk"), lsc, nil)
				if err != nil {
					t.Fatal(err)
				}
				rKeyRow, err := Compile(col("rk"), rsc, nil)
				if err != nil {
					t.Fatal(err)
				}
				lKeyVec, err := CompileVec(col("lk"), lsc, nil)
				if err != nil {
					t.Fatal(err)
				}
				rKeyVec, err := CompileVec(col("rk"), rsc, nil)
				if err != nil {
					t.Fatal(err)
				}
				rowPlan := NewHashJoin(kind, []Evaluator{lKeyRow}, []Evaluator{rKeyRow}, residual, l, r)
				batchPlan := NewBatchHashJoin(kind, []VecFactory{lKeyVec}, []VecFactory{rKeyVec}, residual, l, r)
				want, err := Drain(rowPlan, NewCtx(nil))
				if err != nil {
					t.Fatal(err)
				}
				for _, size := range []int{1, 2, 1024} {
					got := drainWithBatchSize(t, batchPlan, NewCtx(nil), size)
					assertIdenticalRows(t, got, want)
				}
			})
		}
	}
}

// TestBatchHashJoinHotKeyBatchContract is the regression test for the
// batch-size contract violation: a build bucket larger than the requested
// max used to be appended wholesale (50 build rows on one key, a single
// probe row, NextBatch(8) returned 50 live rows). The bucket cursor must
// stop emission exactly at max and resume on the next call.
func TestBatchHashJoinHotKeyBatchContract(t *testing.T) {
	lsc := schema2("lk", "lv")
	rsc := schema2("rk", "rv")
	probe := [][]int64{{1, 0}}
	var build [][]int64
	for i := int64(0); i < 50; i++ {
		build = append(build, []int64{1, i})
	}
	for _, kind := range []algebra.JoinKind{algebra.InnerJoin, algebra.LeftOuterJoin} {
		t.Run(kind.String(), func(t *testing.T) {
			l := NewValues(rowsWithNulls(probe), lsc)
			r := NewValues(rowsWithNulls(build), rsc)
			lKey, err := CompileVec(col("lk"), lsc, nil)
			if err != nil {
				t.Fatal(err)
			}
			rKey, err := CompileVec(col("rk"), rsc, nil)
			if err != nil {
				t.Fatal(err)
			}
			join := NewBatchHashJoin(kind, []VecFactory{lKey}, []VecFactory{rKey}, nil, l, r)
			bi, err := OpenBatches(join, NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			defer bi.Close()
			total := 0
			for {
				b, ok, err := bi.NextBatch(8)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if b.Len() > 8 {
					t.Fatalf("NextBatch(8) returned %d live rows", b.Len())
				}
				total += b.Len()
			}
			if total != 50 {
				t.Fatalf("join emitted %d rows, want 50", total)
			}
		})
	}
}

// TestBatchHashJoinHotKeyResumeOrder drives the hot-key shape through every
// batch size and checks value-for-value identity with the row join, so the
// resume cursor cannot skip or duplicate bucket rows (including the
// unmatched left-outer emission that falls on a batch boundary).
func TestBatchHashJoinHotKeyResumeOrder(t *testing.T) {
	lsc := schema2("lk", "lv")
	rsc := schema2("rk", "rv")
	probe := [][]int64{{1, 0}, {9, 1}, {1, 2}} // hot, unmatched, hot again
	var build [][]int64
	for i := int64(0); i < 23; i++ {
		build = append(build, []int64{1, i})
	}
	residual := cmp(sqltypes.CmpNE, &algebra.ColRef{Name: "rv"}, lit(7))
	kinds := []algebra.JoinKind{algebra.InnerJoin, algebra.LeftOuterJoin,
		algebra.SemiJoin, algebra.AntiJoin}
	for _, kind := range kinds {
		for _, withResidual := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/residual=%v", kind, withResidual), func(t *testing.T) {
				l := NewValues(rowsWithNulls(probe), lsc)
				r := NewValues(rowsWithNulls(build), rsc)
				joined := append(append([]algebra.Column{}, lsc...), rsc...)
				var res Evaluator
				if withResidual {
					var err error
					res, err = Compile(residual, joined, nil)
					if err != nil {
						t.Fatal(err)
					}
				}
				lKeyRow, _ := Compile(col("lk"), lsc, nil)
				rKeyRow, _ := Compile(col("rk"), rsc, nil)
				lKey, _ := CompileVec(col("lk"), lsc, nil)
				rKey, _ := CompileVec(col("rk"), rsc, nil)
				rowPlan := NewHashJoin(kind, []Evaluator{lKeyRow}, []Evaluator{rKeyRow}, res, l, r)
				batchPlan := NewBatchHashJoin(kind, []VecFactory{lKey}, []VecFactory{rKey}, res, l, r)
				want, err := Drain(rowPlan, NewCtx(nil))
				if err != nil {
					t.Fatal(err)
				}
				for _, size := range []int{1, 2, 3, 7, 8, 1024} {
					got := drainWithBatchSize(t, batchPlan, NewCtx(nil), size)
					assertIdenticalRows(t, got, want)
				}
			})
		}
	}
}

func TestBatchScalarAggEquivalence(t *testing.T) {
	sc := schema2("a")
	aggOf := func(fn string, args ...algebra.Expr) *algebra.AggCall {
		return &algebra.AggCall{Func: fn, Args: args}
	}
	for _, tc := range []struct {
		name string
		rows [][]int64
		aggs []*algebra.AggCall
	}{
		{"empty input one row out", nil,
			[]*algebra.AggCall{aggOf("count"), aggOf("sum", col("a")), aggOf("min", col("a")),
				aggOf("max", col("a")), aggOf("avg", col("a"))}},
		{"nulls skipped", [][]int64{{5}, {-1}, {3}, {-1}, {9}},
			[]*algebra.AggCall{aggOf("count"), aggOf("count", col("a")), aggOf("sum", col("a")),
				aggOf("min", col("a")), aggOf("max", col("a")), aggOf("avg", col("a"))}},
		{"all null sum is null", [][]int64{{-1}, {-1}},
			[]*algebra.AggCall{aggOf("sum", col("a")), aggOf("count", col("a"))}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := NewValues(rowsWithNulls(tc.rows), sc)
			outSchema := make([]algebra.Column, len(tc.aggs))
			for i := range tc.aggs {
				outSchema[i] = algebra.Column{Name: "agg"}
			}
			rowSpecs := make([]*AggSpec, len(tc.aggs))
			vecArgs := make([][]VecFactory, len(tc.aggs))
			for i, a := range tc.aggs {
				spec := &AggSpec{Func: a.Func}
				var vecs []VecFactory
				for _, arg := range a.Args {
					rowEv, err := Compile(arg, sc, nil)
					if err != nil {
						t.Fatal(err)
					}
					spec.Args = append(spec.Args, rowEv)
					vecEv, err := CompileVec(arg, sc, nil)
					if err != nil {
						t.Fatal(err)
					}
					vecs = append(vecs, vecEv)
				}
				rowSpecs[i], vecArgs[i] = spec, vecs
			}
			rowPlan := NewHashAgg(nil, rowSpecs, in, outSchema)
			batchPlan := NewBatchScalarAgg(rowSpecs, vecArgs, in, outSchema)
			want, err := Drain(rowPlan, NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 2, 1024} {
				got := drainWithBatchSize(t, batchPlan, NewCtx(nil), size)
				assertIdenticalRows(t, got, want)
			}
		})
	}
}

// newTestTable builds an in-memory storage table for scan tests.
func newTestTable(t *testing.T, name string, cols []string, rows []storage.Row) *storage.Table {
	t.Helper()
	meta := &catalog.Table{Name: name}
	for _, c := range cols {
		meta.Cols = append(meta.Cols, catalog.Column{Name: c, Type: sqltypes.KindInt})
	}
	tab := storage.NewTable(meta)
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBatchScanEquivalence(t *testing.T) {
	tab := newTestTable(t, "t", []string{"a", "b"},
		rowsWithNulls([][]int64{{1, 10}, {2, -1}, {3, 30}}))
	sc := schema2("a", "b")
	want, err := Drain(NewTableScan(tab, sc), NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 1024} {
		got := drainWithBatchSize(t, NewBatchScan(tab, sc), NewCtx(nil), size)
		assertIdenticalRows(t, got, want)
	}

	// Empty table.
	empty := newTestTable(t, "e", []string{"a", "b"}, nil)
	got := drainWithBatchSize(t, NewBatchScan(empty, sc), NewCtx(nil), 4)
	if len(got) != 0 {
		t.Fatalf("empty scan returned %d rows", len(got))
	}
}

// TestVecEvalErrorsMatchRowEval asserts the vectorized evaluator surfaces
// the same runtime errors as the row evaluator (unguarded division by zero).
func TestVecEvalErrorsMatchRowEval(t *testing.T) {
	sc := schema2("a")
	in := NewValues(rowsWithNulls([][]int64{{2}, {0}}), sc)
	div := &algebra.Arith{Op: sqltypes.OpDiv, L: lit(10), R: col("a")}
	rowEv, err := CompileAll([]algebra.Expr{div}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	vecEv, err := CompileVecAll([]algebra.Expr{div}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rowErr := Drain(NewProject(rowEv, false, in, schema2("x")), NewCtx(nil))
	_, vecErr := Drain(NewBatchProject(vecEv, false, in, schema2("x")), NewCtx(nil))
	if rowErr == nil || vecErr == nil {
		t.Fatalf("expected both engines to fail: row=%v vec=%v", rowErr, vecErr)
	}
	if !strings.Contains(vecErr.Error(), "division by zero") {
		t.Fatalf("vectorized error = %v, want division by zero", vecErr)
	}
}
