package exec

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/storage"
)

// CorrBinding maps a parameter name to a column ordinal of the outer row;
// the Apply operator publishes these into the context before each inner
// evaluation. This is how correlated (iterative) plans execute when
// decorrelation is not applied or not possible.
type CorrBinding struct {
	Param string
	Col   int // ordinal in the left row
}

// ApplyBind is one explicit bind-extension argument: the parameter receives
// the value of an expression over the left row.
type ApplyBind struct {
	Param string
	Arg   Evaluator
}

// Apply executes the parameterized right child once per left row, exactly
// as the paper's Apply operator semantics prescribe: E0 A⊗ E1 =
// ⋃_{t∈E0} ({t} ⊗ E1(t)).
type Apply struct {
	Kind   algebra.JoinKind
	Corr   []CorrBinding
	Binds  []ApplyBind
	L, R   Node
	schema []algebra.Column
}

// NewApply constructs a correlated Apply node.
func NewApply(kind algebra.JoinKind, corr []CorrBinding, binds []ApplyBind, l, r Node) *Apply {
	return &Apply{Kind: kind, Corr: corr, Binds: binds, L: l, R: r,
		schema: joinSchema(kind, l, r)}
}

// Schema implements Node.
func (a *Apply) Schema() []algebra.Column { return a.schema }

// Open implements Node.
func (a *Apply) Open(ctx *Ctx) (Iter, error) {
	li, err := OpenRows(a.L, ctx)
	if err != nil {
		return nil, err
	}
	return &applyIter{a: a, ctx: ctx, li: li, rWidth: len(a.R.Schema())}, nil
}

type applyIter struct {
	a      *Apply
	ctx    *Ctx
	li     Iter
	rWidth int

	left    storage.Row
	inner   []storage.Row
	pos     int
	matched bool
	active  bool
}

func (it *applyIter) bindAndEval(left storage.Row) ([]storage.Row, error) {
	ctx := it.ctx
	ctx.Push()
	defer ctx.Pop()
	for _, c := range it.a.Corr {
		ctx.Set(c.Param, left[c.Col])
	}
	for _, b := range it.a.Binds {
		v, err := b.Arg(ctx, left)
		if err != nil {
			return nil, err
		}
		ctx.Set(b.Param, v)
	}
	return Drain(it.a.R, ctx)
}

func (it *applyIter) Next() (storage.Row, bool, error) {
outer:
	for {
		if !it.active {
			if err := it.ctx.Cancelled(); err != nil {
				return nil, false, err
			}
			l, ok, err := it.li.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			rows, err := it.bindAndEval(l)
			if err != nil {
				return nil, false, err
			}
			it.left, it.inner, it.pos, it.matched, it.active = l, rows, 0, false, true
		}
		for it.pos < len(it.inner) {
			r := it.inner[it.pos]
			it.pos++
			it.matched = true
			switch it.a.Kind {
			case algebra.SemiJoin:
				it.active = false
				return it.left, true, nil
			case algebra.AntiJoin:
				it.active = false
				continue outer
			default:
				return concatRows(it.left, r), true, nil
			}
		}
		it.active = false
		switch it.a.Kind {
		case algebra.AntiJoin:
			if !it.matched {
				return it.left, true, nil
			}
		case algebra.LeftOuterJoin:
			if !it.matched {
				return concatRows(it.left, nullRow(it.rWidth)), true, nil
			}
		}
	}
}

func (it *applyIter) Close() error { return it.li.Close() }
