package exec

// Parallel executor tests: the morsel dispenser must cover every row exactly
// once, and every parallel operator (Exchange over scan/filter/project/probe
// segments, parallel group-by and scalar aggregation) must produce the same
// row multiset as its serial counterpart — exactly, since these fixtures
// aggregate integers. Error propagation and early close must not leak
// workers or deadlock.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// assertSameMultiset compares results order-insensitively (parallel
// operators interleave worker output nondeterministically).
func assertSameMultiset(t *testing.T, got, want []storage.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row counts differ: got %d, want %d", len(got), len(want))
	}
	count := map[string]int{}
	for _, r := range want {
		count[sqltypes.KeyOf(r...)]++
	}
	for _, r := range got {
		count[sqltypes.KeyOf(r...)]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("row multiset mismatch (key %x: %+d)", k, v)
		}
	}
}

// intTable builds a storage table of sequential rows: (i, i%mod, i*2).
func intTable(t *testing.T, name string, n int, mod int64) *storage.Table {
	t.Helper()
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i) % mod),
			sqltypes.NewInt(int64(i) * 2),
		}
	}
	return newTestTable(t, name, []string{"a", "b", "c"}, rows)
}

func TestMorselSourceCoversEveryRowOnce(t *testing.T) {
	n := 3*MorselRows + 17
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{sqltypes.NewInt(int64(i))}
	}
	// Published segments plus a transaction overlay: the dispenser must
	// cover the combined ordinal space exactly once.
	tab := newTestTable(t, "m", []string{"a"}, rows[:n-5])
	src := newMorselSource(tab.Version(), rows[n-5:])
	if src.total != n {
		t.Fatalf("total = %d, want %d", src.total, n)
	}
	if got, want := src.morselCount(), 4; got != want {
		t.Fatalf("morselCount = %d, want %d", got, want)
	}
	type span struct{ lo, hi int }
	var mu sync.Mutex
	var spans []span
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := src.grab()
				if !ok {
					return
				}
				mu.Lock()
				spans = append(spans, span{lo, hi})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	next := 0
	for _, s := range spans {
		if s.lo != next {
			t.Fatalf("gap or overlap at row %d (span starts at %d)", next, s.lo)
		}
		next = s.hi
	}
	if next != len(rows) {
		t.Fatalf("covered %d rows, want %d", next, len(rows))
	}
}

// parallelPair parallelizes the plan at degree 4 and requires the rewrite
// to fire.
func parallelPair(t *testing.T, serial Node) Node {
	t.Helper()
	par, notes, ok := Parallelize(serial, 4)
	if !ok {
		t.Fatalf("Parallelize did not rewrite %T", serial)
	}
	if len(notes) == 0 {
		t.Fatal("Parallelize returned no EXPLAIN notes")
	}
	return par
}

func TestExchangeScanFilterProjectEquivalence(t *testing.T) {
	tab := intTable(t, "t", 10_000, 7)
	sc := schema2("a", "b", "c")
	pred, err := CompilePred(cmp(sqltypes.CmpNE, col("b"), lit(3)), sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	exprs, err := CompileVecAll([]algebra.Expr{
		&algebra.Arith{Op: sqltypes.OpAdd, L: col("a"), R: col("c")},
		col("b"),
	}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewBatchProject(exprs, false,
		&BatchFilter{Pred: pred, Child: NewBatchScan(tab, sc)}, schema2("x", "y"))
	want, err := Drain(plan, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	par := parallelPair(t, plan)
	if _, ok := par.(*Exchange); !ok {
		t.Fatalf("expected Exchange root, got %T", par)
	}
	ctx := NewCtx(nil)
	got, err := Drain(par, ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMultiset(t, got, want)
	if ctx.Counters.Workers == 0 {
		t.Fatal("no parallel workers recorded")
	}
	if ctx.Counters.Morsels == 0 {
		t.Fatal("no morsels recorded")
	}
}

func TestParallelHashJoinEquivalence(t *testing.T) {
	probeTab := intTable(t, "probe", 9_000, 5)
	buildTab := intTable(t, "build", 400, 5) // 80 rows per key: hot buckets
	sc := schema2("a", "b", "c")
	kinds := []algebra.JoinKind{algebra.InnerJoin, algebra.LeftOuterJoin,
		algebra.SemiJoin, algebra.AntiJoin}
	for _, kind := range kinds {
		for _, withResidual := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/residual=%v", kind, withResidual), func(t *testing.T) {
				mk := func() Node {
					l := NewBatchScan(probeTab, sc)
					r := NewBatchScan(buildTab, sc)
					lKey, _ := CompileVec(col("b"), sc, nil)
					rKey, _ := CompileVec(col("b"), sc, nil)
					var res Evaluator
					if withResidual {
						joined := append(append([]algebra.Column{}, sc...), sc...)
						ev, err := Compile(cmp(sqltypes.CmpLT, &algebra.ColRef{Name: "c"}, lit(300)),
							joined, nil)
						if err != nil {
							t.Fatal(err)
						}
						res = ev
					}
					return NewBatchHashJoin(kind, []VecFactory{lKey}, []VecFactory{rKey}, res, l, r)
				}
				want, err := Drain(mk(), NewCtx(nil))
				if err != nil {
					t.Fatal(err)
				}
				par := parallelPair(t, mk())
				got, err := Drain(par, NewCtx(nil))
				if err != nil {
					t.Fatal(err)
				}
				assertSameMultiset(t, got, want)
			})
		}
	}
}

func TestParallelGroupByEquivalence(t *testing.T) {
	tab := intTable(t, "t", 12_345, 97)
	sc := schema2("a", "b", "c")
	mk := func() *BatchGroupBy {
		key, _ := CompileVec(col("b"), sc, nil)
		argA, _ := CompileVec(col("a"), sc, nil)
		argC, _ := CompileVec(col("c"), sc, nil)
		aggs := []*AggSpec{
			{Func: "count"},
			{Func: "sum", Args: make([]Evaluator, 1)},
			{Func: "min", Args: make([]Evaluator, 1)},
			{Func: "max", Args: make([]Evaluator, 1)},
			{Func: "avg", Args: make([]Evaluator, 1)},
		}
		args := [][]VecFactory{nil, {argA}, {argA}, {argC}, {argA}}
		return NewBatchGroupBy([]VecFactory{key}, aggs, args,
			NewBatchScan(tab, sc), schema2("k", "n", "s", "mn", "mx", "av"))
	}
	want, err := Drain(mk(), NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 97 {
		t.Fatalf("serial group-by produced %d groups, want 97", len(want))
	}
	par := parallelPair(t, mk())
	if _, ok := par.(*parallelGroupBy); !ok {
		t.Fatalf("expected parallelGroupBy root, got %T", par)
	}
	got, err := Drain(par, NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Integer aggregation is exact, and avg over integers divides identical
	// partial sums, so the multisets must match bit-for-bit.
	assertSameMultiset(t, got, want)
}

func TestParallelScalarAggEquivalence(t *testing.T) {
	for _, n := range []int{0, 5, 20_000} {
		t.Run(fmt.Sprintf("rows=%d", n), func(t *testing.T) {
			tab := intTable(t, "t", n, 11)
			sc := schema2("a", "b", "c")
			mk := func() *BatchScalarAgg {
				argA, _ := CompileVec(col("a"), sc, nil)
				aggs := []*AggSpec{
					{Func: "count"},
					{Func: "sum", Args: make([]Evaluator, 1)},
					{Func: "min", Args: make([]Evaluator, 1)},
				}
				args := [][]VecFactory{nil, {argA}, {argA}}
				return NewBatchScalarAgg(aggs, args, NewBatchScan(tab, sc),
					schema2("n", "s", "mn"))
			}
			want, err := Drain(mk(), NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != 1 {
				t.Fatalf("scalar agg produced %d rows, want 1", len(want))
			}
			par := parallelPair(t, mk())
			got, err := Drain(par, NewCtx(nil))
			if err != nil {
				t.Fatal(err)
			}
			assertSameMultiset(t, got, want)
		})
	}
}

func TestParallelizeShapes(t *testing.T) {
	tab := intTable(t, "t", 100, 3)
	sc := schema2("a", "b", "c")
	scan := func() Node { return NewBatchScan(tab, sc) }

	// LIMIT is a parallelization barrier: first-N over nondeterministic
	// worker order would change the result set.
	if _, _, ok := Parallelize(&BatchLimit{N: 5, Child: scan()}, 4); ok {
		t.Fatal("Parallelize rewrote a LIMIT plan")
	}

	// DISTINCT projection stays serial, but its child parallelizes.
	exprs, err := CompileVecAll([]algebra.Expr{col("b")}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	dedup := NewBatchProject(exprs, true, scan(), schema2("b"))
	par, notes, ok := Parallelize(dedup, 4)
	if !ok {
		t.Fatal("Parallelize did not recurse under a DISTINCT projection")
	}
	proj, isProj := par.(*BatchProject)
	if !isProj || !proj.Dedup {
		t.Fatalf("expected serial DISTINCT projection root, got %T", par)
	}
	if _, isEx := proj.Child.(*Exchange); !isEx {
		t.Fatalf("expected Exchange under the projection, got %T", proj.Child)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "degree=4") {
		t.Fatalf("notes = %v, want Exchange note with degree", notes)
	}

	// Degree 1 is a no-op.
	if _, _, ok := Parallelize(scan(), 1); ok {
		t.Fatal("Parallelize rewrote at degree 1")
	}

	// Tiny tables clamp the worker count to the morsel count.
	ctx := NewCtx(nil)
	got, err := Drain(parallelPair(t, scan()), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("parallel scan returned %d rows, want 100", len(got))
	}
	if ctx.Counters.Workers != 1 {
		t.Fatalf("100-row scan launched %d workers, want 1 (morsel clamp)", ctx.Counters.Workers)
	}
}

func TestExchangeErrorPropagation(t *testing.T) {
	rows := make([]storage.Row, 9_000)
	for i := range rows {
		rows[i] = storage.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 100))}
	}
	rows[8_500][1] = sqltypes.NewInt(0) // ensure a zero divisor deep in the scan
	tab := newTestTable(t, "t", []string{"a", "b"}, rows)
	sc := schema2("a", "b")
	div := &algebra.Arith{Op: sqltypes.OpDiv, L: lit(100), R: col("b")}
	exprs, err := CompileVecAll([]algebra.Expr{div}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewBatchProject(exprs, false, NewBatchScan(tab, sc), schema2("x"))
	_, serialErr := Drain(plan, NewCtx(nil))
	if serialErr == nil {
		t.Fatal("serial plan did not fail")
	}
	_, parErr := Drain(parallelPair(t, plan), NewCtx(nil))
	if parErr == nil {
		t.Fatal("parallel plan did not surface the worker error")
	}
	if !strings.Contains(parErr.Error(), "division by zero") {
		t.Fatalf("parallel error = %v, want division by zero", parErr)
	}
}

// TestExchangeEarlyClose abandons a parallel stream mid-flight: Close must
// unblock the workers and return (a hang here is the failure mode).
func TestExchangeEarlyClose(t *testing.T) {
	tab := intTable(t, "t", 50_000, 7)
	sc := schema2("a", "b", "c")
	par := parallelPair(t, NewBatchScan(tab, sc))
	ctx := NewCtx(nil)
	bi, err := OpenBatches(par, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := bi.NextBatch(64); err != nil || !ok {
		t.Fatalf("first batch: ok=%v err=%v", ok, err)
	}
	if err := bi.Close(); err != nil {
		t.Fatal(err)
	}
}
