// Physical-plan tree rendering for EXPLAIN ANALYZE: a structural walk over
// the operator graph (PlanChildren/PlanLabel) plus FormatTree, which
// annotates each operator with the stats a Profiler measured for it.
package exec

import (
	"fmt"
	"strings"
	"time"
)

// PlanChildren returns n's child plan nodes in display order (outer/probe
// side first). Leaves — scans, index probes, Values, Single, table
// functions, and parallel operators whose pipelines live inside opaque
// segments — return nil.
func PlanChildren(n Node) []Node {
	switch x := n.(type) {
	case *Filter:
		return []Node{x.Child}
	case *Project:
		return []Node{x.Child}
	case *Limit:
		return []Node{x.Child}
	case *Sort:
		return []Node{x.Child}
	case *HashAgg:
		return []Node{x.Child}
	case *UnionAll:
		return []Node{x.L, x.R}
	case *Apply:
		return []Node{x.L, x.R}
	case *NLJoin:
		return []Node{x.L, x.R}
	case *HashJoin:
		return []Node{x.L, x.R}
	case *MergeJoin:
		return []Node{x.L, x.R}
	case *BatchFilter:
		return []Node{x.Child}
	case *BatchProject:
		return []Node{x.Child}
	case *BatchLimit:
		return []Node{x.Child}
	case *BatchScalarAgg:
		return []Node{x.Child}
	case *BatchGroupBy:
		return []Node{x.Child}
	case *BatchHashJoin:
		return []Node{x.L, x.R}
	}
	return nil
}

// PlanLabel names an operator for the annotated tree. Parallel operators
// reuse their EXPLAIN Describe text (which names the fused segment), so the
// analyze tree and the plan-choice notes agree.
func PlanLabel(n Node) string {
	switch x := n.(type) {
	case *TableScan:
		return "TableScan(" + x.Tab.Meta.Name + ")"
	case *IndexLookup:
		return "IndexLookup(" + x.Tab.Meta.Name + "." + x.Col + ")"
	case *Filter:
		return "Filter"
	case *Project:
		if x.Dedup {
			return "Project(distinct)"
		}
		return "Project"
	case *Limit:
		return fmt.Sprintf("Limit(%d)", x.N)
	case *Sort:
		return "Sort"
	case *UnionAll:
		return "UnionAll"
	case *Single:
		return "Single"
	case *Values:
		return fmt.Sprintf("Values(%d)", len(x.Rows))
	case *FuncTable:
		return "FuncTable(" + x.Name + ")"
	case *Apply:
		return "Apply(" + x.Kind.String() + ")"
	case *NLJoin:
		return "NLJoin(" + x.Kind.String() + ")"
	case *HashJoin:
		return "HashJoin(" + x.Kind.String() + ")"
	case *MergeJoin:
		return "MergeJoin(inner)"
	case *HashAgg:
		if len(x.Keys) == 0 {
			return "ScalarAgg"
		}
		return "HashAgg"
	case *BatchScan:
		return "BatchScan(" + x.Tab.Meta.Name + ")"
	case *BatchFilter:
		return "BatchFilter"
	case *BatchProject:
		if x.Dedup {
			return "BatchProject(distinct)"
		}
		return "BatchProject"
	case *BatchLimit:
		return fmt.Sprintf("BatchLimit(%d)", x.N)
	case *BatchHashJoin:
		return "BatchHashJoin(" + x.Kind.String() + ")"
	case *BatchScalarAgg:
		return "BatchScalarAgg"
	case *BatchGroupBy:
		return "BatchGroupBy"
	case *Exchange:
		return x.Describe()
	case *parallelGroupBy:
		return x.Describe()
	}
	return fmt.Sprintf("%T", n)
}

// FormatTree renders the plan rooted at root as an indented tree, one
// operator per line, annotated with prof's measurements (pass nil for a
// bare structural tree). Counts are deterministic for a given plan and
// data; times are wall-clock and vary run to run.
func FormatTree(root Node, prof *Profiler) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(PlanLabel(n))
		if prof != nil {
			st := prof.Stats(n)
			b.WriteString(formatOpStats(st))
		}
		b.WriteByte('\n')
		for _, c := range PlanChildren(n) {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// formatOpStats renders one operator's annotation suffix.
func formatOpStats(st OpStats) string {
	if st.Opens == 0 && st.Workers == 0 {
		return "  (never executed)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  rows=%d", st.Rows)
	if st.Batches > 0 {
		fmt.Fprintf(&b, " batches=%d", st.Batches)
	}
	if st.Opens > 1 {
		fmt.Fprintf(&b, " loops=%d", st.Opens)
	}
	fmt.Fprintf(&b, " time=%s", fmtAnalyzeDur(st.Time))
	if st.Workers > 0 {
		fmt.Fprintf(&b, " workers=%d worker_rows=%d worker_time=%s",
			st.Workers, st.WorkerRows, fmtAnalyzeDur(st.WorkerTime))
	}
	return b.String()
}

func fmtAnalyzeDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
