package exec

import (
	"testing"

	"udfdecorr/internal/sqltypes"
)

func mustMerge(t *testing.T, specs []PartialAggSpec, shards ...[]sqltypes.Value) []sqltypes.Value {
	t.Helper()
	pm, err := NewPartialMerge(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, partials := range shards {
		if err := pm.Absorb(partials); err != nil {
			t.Fatal(err)
		}
	}
	out, err := pm.Results()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPartialMergeAvgWeighting: a global avg must weight each shard by its
// row count, not average the shard averages. Shard A: 2 rows summing 10;
// shard B: 8 rows summing 70. Global avg = 80/10 = 8, while the average of
// the two shard averages would be (5+8.75)/2 = 6.875.
func TestPartialMergeAvgWeighting(t *testing.T) {
	specs := []PartialAggSpec{{Func: "avg"}}
	out := mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.NewFloat(10), sqltypes.NewInt(2)},
		[]sqltypes.Value{sqltypes.NewFloat(70), sqltypes.NewInt(8)},
	)
	if got, _ := out[0].AsFloat(); got != 8 {
		t.Fatalf("merged avg = %v, want 8", out[0])
	}
}

// TestPartialMergeAvgEmptyShard: a shard whose partition holds no matching
// rows ships a NULL sum and zero count; it must not disturb the average.
func TestPartialMergeAvgEmptyShard(t *testing.T) {
	specs := []PartialAggSpec{{Func: "avg"}}
	out := mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.Null, sqltypes.NewInt(0)},
		[]sqltypes.Value{sqltypes.NewFloat(6), sqltypes.NewInt(3)},
	)
	if got, _ := out[0].AsFloat(); got != 2 {
		t.Fatalf("merged avg = %v, want 2", out[0])
	}
	// All shards empty: avg of nothing is NULL.
	out = mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.Null, sqltypes.NewInt(0)},
		[]sqltypes.Value{sqltypes.Null, sqltypes.NewInt(0)},
	)
	if !out[0].IsNull() {
		t.Fatalf("avg over all-empty shards = %v, want NULL", out[0])
	}
}

// TestPartialMergeCountForms: COUNT(*) and COUNT(x) both merge by adding
// per-shard finals — the NULL-skipping already happened shard-side, so a
// shard that counted 0 non-NULL values contributes 0, not NULL.
func TestPartialMergeCountForms(t *testing.T) {
	specs := []PartialAggSpec{{Func: "count", Star: true}, {Func: "count"}}
	out := mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.NewInt(4), sqltypes.NewInt(3)}, // 4 rows, 1 NULL x
		[]sqltypes.Value{sqltypes.NewInt(2), sqltypes.NewInt(0)}, // 2 rows, all-NULL x
	)
	if got, _ := out[0].AsInt(); got != 6 {
		t.Fatalf("count(*) = %v, want 6", out[0])
	}
	if got, _ := out[1].AsInt(); got != 3 {
		t.Fatalf("count(x) = %v, want 3", out[1])
	}
}

// TestPartialMergeMinMaxEmptyShards: empty shards ship NULL finals, which
// min/max must skip; if every shard is empty the result stays NULL.
func TestPartialMergeMinMaxEmptyShards(t *testing.T) {
	specs := []PartialAggSpec{{Func: "min"}, {Func: "max"}}
	out := mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.Null, sqltypes.Null},
		[]sqltypes.Value{sqltypes.NewInt(5), sqltypes.NewInt(5)},
		[]sqltypes.Value{sqltypes.NewInt(9), sqltypes.NewInt(9)},
	)
	if got, _ := out[0].AsInt(); got != 5 {
		t.Fatalf("min = %v, want 5", out[0])
	}
	if got, _ := out[1].AsInt(); got != 9 {
		t.Fatalf("max = %v, want 9", out[1])
	}
	out = mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.Null, sqltypes.Null},
		[]sqltypes.Value{sqltypes.Null, sqltypes.Null},
	)
	if !out[0].IsNull() || !out[1].IsNull() {
		t.Fatalf("min/max over all-empty shards = %v/%v, want NULL/NULL", out[0], out[1])
	}
}

// TestPartialMergeSumNullSkip: sum skips empty-shard NULLs but stays NULL
// when every shard was empty.
func TestPartialMergeSumNullSkip(t *testing.T) {
	specs := []PartialAggSpec{{Func: "sum"}}
	out := mustMerge(t, specs,
		[]sqltypes.Value{sqltypes.Null},
		[]sqltypes.Value{sqltypes.NewInt(7)},
	)
	if got, _ := out[0].AsInt(); got != 7 {
		t.Fatalf("sum = %v, want 7", out[0])
	}
	out = mustMerge(t, specs, []sqltypes.Value{sqltypes.Null})
	if !out[0].IsNull() {
		t.Fatalf("sum over all-empty shards = %v, want NULL", out[0])
	}
}

// TestPartialMergeWidth: avg contributes two partial cells; a mis-sized
// tuple is an error, not a silent misalignment.
func TestPartialMergeWidth(t *testing.T) {
	pm, err := NewPartialMerge([]PartialAggSpec{{Func: "avg"}, {Func: "sum"}})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Width() != 3 {
		t.Fatalf("width = %d, want 3", pm.Width())
	}
	if err := pm.Absorb([]sqltypes.Value{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("short partial tuple did not error")
	}
	if _, err := NewPartialMerge([]PartialAggSpec{{Func: "median"}}); err == nil {
		t.Fatal("unmergeable aggregate did not error")
	}
}
