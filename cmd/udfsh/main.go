// Command udfsh is an interactive shell over the bundled engine: type DDL
// (CREATE TABLE / CREATE FUNCTION), INSERT rows, and run queries that
// invoke UDFs under any of the three execution modes.
//
// Meta commands:
//
//	.mode iterative|rewrite|costbased   switch execution mode
//	.vectorized on|off                  toggle the batch (vectorized) executor
//	.profile sys1|sys2                  switch engine profile (resets data!)
//	.explain <query>                    show plan choices for a query
//	.rewrite <query>                    show the decorrelated SQL
//	.help                               this text
//	.quit
//
// Statements end with ';' and may span lines.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/sqlgen"
)

func main() {
	e := engine.New(engine.SYS1, engine.ModeRewrite)
	fmt.Println("udfdecorr shell — mode=rewrite profile=SYS1 (.help for commands)")

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("udf> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !meta(e, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		// Statements are terminated by ';' at end of line; CREATE FUNCTION
		// bodies end with END.
		full := buf.String()
		if !complete(full) {
			prompt()
			continue
		}
		buf.Reset()
		run(e, full)
		prompt()
	}
}

// complete reports whether the buffered text forms a full statement: either
// a non-CREATE-FUNCTION statement ending in ';', or a function definition
// whose BEGIN/END nesting is closed.
func complete(src string) bool {
	upper := strings.ToUpper(src)
	if strings.Contains(upper, "CREATE FUNCTION") {
		depth := 0
		for _, w := range strings.Fields(strings.ReplaceAll(upper, ";", " ; ")) {
			switch w {
			case "BEGIN":
				depth++
			case "END":
				depth--
			}
		}
		return strings.Count(upper, "BEGIN") > 0 && depth <= 0
	}
	return strings.HasSuffix(strings.TrimSpace(src), ";")
}

// meta executes a dot-command; returns false to exit.
func meta(e *engine.Engine, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(".mode iterative|rewrite|costbased — execution mode")
		fmt.Println(".vectorized on|off                — batch executor")
		fmt.Println(".explain <query>                  — plan choices")
		fmt.Println(".rewrite <query>                  — decorrelated SQL")
		fmt.Println(".quit")
	case ".mode":
		if len(fields) < 2 {
			fmt.Println("current mode:", e.Mode)
			break
		}
		switch fields[1] {
		case "iterative":
			e.Mode = engine.ModeIterative
		case "rewrite":
			e.Mode = engine.ModeRewrite
		case "costbased":
			e.Mode = engine.ModeCostBased
		default:
			fmt.Println("unknown mode", fields[1])
		}
	case ".vectorized":
		if len(fields) < 2 {
			fmt.Println("vectorized:", e.Profile.Vectorized)
			break
		}
		switch fields[1] {
		case "on", "true":
			e.SetVectorized(true)
		case "off", "false":
			e.SetVectorized(false)
		default:
			fmt.Println("usage: .vectorized on|off")
		}
	case ".explain":
		out, err := e.Explain(strings.TrimPrefix(cmd, ".explain "))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(out)
	case ".rewrite":
		res, err := e.RewriteSQL(strings.TrimPrefix(cmd, ".rewrite "))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if !res.Decorrelated {
			fmt.Println("-- not fully decorrelated; query left unchanged")
			break
		}
		for _, agg := range res.NewAggs {
			fmt.Println(agg.SQL())
		}
		sql, err := sqlgen.Generate(res.Rel)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(sql)
	default:
		fmt.Println("unknown command; .help for help")
	}
	return true
}

// run executes one SQL statement (DDL, INSERT, or query).
func run(e *engine.Engine, src string) {
	trimmed := strings.TrimSpace(src)
	upper := strings.ToUpper(trimmed)
	switch {
	case strings.HasPrefix(upper, "SELECT"):
		t0 := time.Now()
		res, err := e.Query(trimmed)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d rows, %s, rewritten=%v, udf calls=%d)\n",
			len(res.Rows), time.Since(t0).Round(time.Microsecond),
			res.Rewritten, res.Counters.UDFCalls)
	default:
		if err := e.ExecScript(trimmed); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("ok")
	}
}
