// Command udfsh is an interactive shell over the bundled engine, running
// through the same concurrent query service (and shared plan cache) as
// udfserverd: type DDL (CREATE TABLE / CREATE FUNCTION), INSERT rows, and
// run queries that invoke UDFs under any of the three execution modes.
//
// Non-interactive use: `udfsh -f script.sql` executes a statement script and
// exits; piping a script on stdin (`udfsh < script.sql`) behaves the same —
// prompts are suppressed whenever stdin is not a terminal, so CI and fixture
// replay need no flags.
//
// Meta commands:
//
//	.mode iterative|rewrite|costbased   switch execution mode
//	.vectorized on|off                  toggle the batch (vectorized) executor
//	.parallel <n>                       intra-query worker degree (1 = serial)
//	.profile sys1|sys2                  switch engine profile
//	.timeout <dur>|off                  per-statement timeout (e.g. 500ms, 2s)
//	.explain <query>                    show plan choices for a query
//	.rewrite <query>                    show the decorrelated SQL
//	.checkpoint                         snapshot a durable shell's data dir
//	.stats                              plan-cache, parallel and query counters
//	.help                               this text
//	.quit
//
// With -data-dir the shell is durable: state recovers on start, DDL and
// inserts are logged write-ahead, and a checkpoint is written on clean exit
// (plus on demand via .checkpoint). -fsync tunes the WAL sync policy.
//
// Statements end with ';' and may span lines. Interactively, Ctrl-C cancels
// the currently running statement (returning to the prompt) instead of
// killing the shell.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
	"udfdecorr/internal/sqlgen"
	"udfdecorr/internal/wal"
)

// shell bundles the service, the single local session, and output settings.
type shell struct {
	svc         *server.Service
	sess        *server.Session
	interactive bool
	// sigc receives SIGINT while a statement runs (interactive mode only);
	// nil in script mode, where Ctrl-C keeps its default kill behavior.
	sigc chan os.Signal
}

// statementCtx derives the context one statement runs under: cancelled by
// Ctrl-C when interactive. The returned stop must be called when the
// statement finishes.
func (sh *shell) statementCtx() (context.Context, func()) {
	if sh.sigc == nil {
		return context.Background(), func() {}
	}
	// Drop any interrupt delivered while idle at the prompt, so it cannot
	// cancel the next statement retroactively.
	select {
	case <-sh.sigc:
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-sh.sigc:
			cancel()
		case <-done:
		}
	}()
	return ctx, func() { close(done); cancel() }
}

func main() {
	scriptPath := flag.String("f", "", "execute the statement script and exit")
	dataDir := flag.String("data-dir", "", "durable mode: data directory for WAL + checkpoints (empty = in-memory)")
	fsync := flag.String("fsync", "always", "durable mode: WAL fsync policy: always|none|<interval>")
	flag.Parse()

	var boot *engine.Engine
	if *dataDir != "" {
		policy, interval, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		var oerr error
		boot, oerr = engine.OpenDurable(*dataDir, engine.SYS1, engine.ModeRewrite,
			engine.DurabilityOptions{Sync: policy, SyncInterval: interval})
		if oerr != nil {
			fmt.Fprintln(os.Stderr, "error:", oerr)
			os.Exit(1)
		}
		if st := boot.Durable.Stats(); st.RecoveredRecords > 0 {
			fmt.Printf("recovered %s: %d records replayed\n", *dataDir, st.RecoveredRecords)
		}
	} else {
		boot = engine.New(engine.SYS1, engine.ModeRewrite)
	}
	svc := server.NewServiceFromEngine(boot, server.DefaultOptions())
	sh := &shell{svc: svc, sess: svc.CreateSession(engine.SYS1, engine.ModeRewrite)}
	if boot.Durable != nil {
		// A clean exit compacts the log into a snapshot, so the next start
		// replays a checkpoint instead of the session's whole history.
		defer func() {
			if err := svc.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "exit checkpoint:", err)
			}
			if err := boot.Durable.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "closing data dir:", err)
			}
		}()
	}

	var in io.Reader = os.Stdin
	if *scriptPath != "" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		sh.interactive = true
	}

	if sh.interactive {
		// Catch SIGINT so Ctrl-C cancels the running statement, not the
		// shell. Script mode keeps the default (a Ctrl-C kills the replay).
		sh.sigc = make(chan os.Signal, 1)
		signal.Notify(sh.sigc, os.Interrupt)
		fmt.Println("udfdecorr shell — mode=rewrite profile=SYS1 (.help for commands, Ctrl-C cancels a running statement)")
	}
	if err := sh.repl(in); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// repl reads statements (and meta commands) until EOF or .quit. In script
// mode an error aborts with a non-zero exit; interactively it is printed and
// the loop continues.
func (sh *shell) repl(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if !sh.interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("udf> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			quit, err := sh.meta(trimmed)
			if err != nil && !sh.interactive {
				return err
			}
			if quit {
				return nil
			}
			prompt()
			continue
		}
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		// Statements are terminated by ';' at end of line; CREATE FUNCTION
		// bodies end with END.
		full := buf.String()
		if !complete(full) {
			prompt()
			continue
		}
		buf.Reset()
		if err := sh.run(full); err != nil {
			if !sh.interactive {
				return err
			}
			fmt.Println("error:", err)
		}
		prompt()
	}
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		// Script ended without a trailing ';' — run the remainder anyway.
		if err := sh.run(rest); err != nil && !sh.interactive {
			return err
		}
	}
	return sc.Err()
}

// complete reports whether the buffered text forms a full statement: either
// a non-CREATE-FUNCTION statement ending in ';', or a function definition
// whose BEGIN/END nesting is closed.
func complete(src string) bool {
	upper := strings.ToUpper(src)
	if strings.Contains(upper, "CREATE FUNCTION") {
		depth := 0
		for _, w := range strings.Fields(strings.ReplaceAll(upper, ";", " ; ")) {
			switch w {
			case "BEGIN":
				depth++
			case "END":
				depth--
			}
		}
		return strings.Count(upper, "BEGIN") > 0 && depth <= 0
	}
	return strings.HasSuffix(strings.TrimSpace(src), ";")
}

// meta executes a dot-command; quit is true on .quit/.exit.
func (sh *shell) meta(cmd string) (quit bool, err error) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return true, nil
	case ".help":
		fmt.Println(".mode iterative|rewrite|costbased — execution mode")
		fmt.Println(".vectorized on|off                — batch executor")
		fmt.Println(".parallel <n>                     — intra-query worker degree (1 = serial)")
		fmt.Println(".profile sys1|sys2                — engine profile")
		fmt.Println(".timeout <dur>|off                — per-statement timeout (e.g. 500ms, 2s)")
		fmt.Println(".explain <query>                  — plan choices")
		fmt.Println(".analyze <query>                  — execute and show per-operator rows/time")
		fmt.Println(".rewrite <query>                  — decorrelated SQL")
		fmt.Println(".checkpoint                       — snapshot a durable shell's data dir")
		fmt.Println(".stats                            — plan cache + parallel + query counters")
		fmt.Println(".quit")
	case ".mode":
		_, mode := sh.sess.Settings()
		if len(fields) < 2 {
			fmt.Println("current mode:", mode)
			break
		}
		m, perr := server.ParseMode(fields[1])
		if perr != nil {
			fmt.Println(perr)
			return false, perr
		}
		sh.sess.SetMode(m)
	case ".vectorized":
		profile, _ := sh.sess.Settings()
		if len(fields) < 2 {
			fmt.Println("vectorized:", profile.Vectorized)
			break
		}
		switch fields[1] {
		case "on", "true":
			sh.sess.SetVectorized(true)
		case "off", "false":
			sh.sess.SetVectorized(false)
		default:
			fmt.Println("usage: .vectorized on|off")
		}
	case ".parallel":
		profile, _ := sh.sess.Settings()
		if len(fields) < 2 {
			degree := profile.Parallelism
			if degree < 1 {
				degree = 1
			}
			fmt.Println("parallelism:", degree)
			break
		}
		n, perr := strconv.Atoi(fields[1])
		if perr != nil || n < 1 {
			err := fmt.Errorf("usage: .parallel <n> (n >= 1)")
			fmt.Println(err)
			return false, err
		}
		sh.sess.SetParallelism(n)
		if !profile.Vectorized && n > 1 {
			fmt.Println("note: parallelism applies to the vectorized executor (.vectorized on)")
		}
	case ".profile":
		profile, _ := sh.sess.Settings()
		if len(fields) < 2 {
			fmt.Println("current profile:", profile.Name)
			break
		}
		p, perr := server.ParseProfile(fields[1])
		if perr != nil {
			fmt.Println(perr)
			return false, perr
		}
		sh.sess.SetProfile(p)
	case ".timeout":
		if len(fields) < 2 {
			if d := sh.sess.Timeout(); d > 0 {
				fmt.Println("statement timeout:", d)
			} else {
				fmt.Println("statement timeout: off")
			}
			break
		}
		if fields[1] == "off" || fields[1] == "0" {
			sh.sess.SetTimeout(0)
			break
		}
		d, perr := time.ParseDuration(fields[1])
		if perr != nil || d < 0 {
			err := fmt.Errorf("usage: .timeout <duration>|off (e.g. .timeout 2s)")
			fmt.Println(err)
			return false, err
		}
		sh.sess.SetTimeout(d)
	case ".checkpoint":
		if cerr := sh.svc.Checkpoint(); cerr != nil {
			fmt.Println("error:", cerr)
			return false, cerr
		}
		if st := sh.svc.Stats().Durability; st != nil {
			fmt.Printf("checkpoint #%d written (wal now %d bytes)\n", st.Checkpoints, st.WALBytes)
		}
	case ".stats":
		fmt.Print(sh.svc.Stats().Format())
	case ".explain":
		out, eerr := sh.svc.Explain(sh.sess, strings.TrimPrefix(cmd, ".explain "))
		if eerr != nil {
			fmt.Println("error:", eerr)
			return false, eerr
		}
		fmt.Print(out)
	case ".analyze":
		out, aerr := sh.svc.ExplainAnalyze(context.Background(), sh.sess, strings.TrimPrefix(cmd, ".analyze "))
		if aerr != nil {
			fmt.Println("error:", aerr)
			return false, aerr
		}
		fmt.Print(out)
	case ".rewrite":
		res, rerr := sh.sess.Engine().RewriteSQL(strings.TrimPrefix(cmd, ".rewrite "))
		if rerr != nil {
			fmt.Println("error:", rerr)
			return false, rerr
		}
		if !res.Decorrelated {
			fmt.Println("-- not fully decorrelated; query left unchanged")
			break
		}
		for _, agg := range res.NewAggs {
			fmt.Println(agg.SQL())
		}
		sql, gerr := sqlgen.Generate(res.Rel)
		if gerr != nil {
			fmt.Println("error:", gerr)
			return false, gerr
		}
		fmt.Println(sql)
	default:
		fmt.Println("unknown command; .help for help")
	}
	return false, nil
}

// run executes one SQL statement (DDL, INSERT, or query) through the query
// service, so the shared plan cache and the .stats counters see it.
func (sh *shell) run(src string) error {
	trimmed := strings.TrimSpace(src)
	upper := strings.ToUpper(trimmed)
	switch {
	case strings.HasPrefix(upper, "SELECT"):
		ctx, stop := sh.statementCtx()
		defer stop()
		t0 := time.Now()
		res, err := sh.svc.QueryContext(ctx, sh.sess, trimmed)
		if err != nil {
			if sh.interactive && errors.Is(err, context.Canceled) {
				fmt.Printf("cancelled after %s\n", time.Since(t0).Round(time.Millisecond))
				return nil
			}
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("statement timeout (%s) exceeded", sh.sess.Timeout())
			}
			return err
		}
		fmt.Print(res.Format())
		fmt.Printf("(%d rows, %s, rewritten=%v, cached=%v, udf calls=%d)\n",
			len(res.Rows), time.Since(t0).Round(time.Microsecond),
			res.Rewritten, res.CacheHit, res.Counters.UDFCalls)
	default:
		ctx, stop := sh.statementCtx()
		defer stop()
		if err := sh.svc.ExecContext(ctx, sh.sess, trimmed); err != nil {
			if sh.interactive && errors.Is(err, context.Canceled) {
				fmt.Println("cancelled (already-applied statements remain)")
				return nil
			}
			return err
		}
		if sh.interactive {
			fmt.Println("ok")
		}
	}
	return nil
}
