// Command udfrouterd is the sharded query tier's router daemon: a stateless
// process that fronts N udfserverd shards and serves the same versioned wire
// API (session, /query, /exec, /stream, /explain, /stats) over the
// hash-partitioned cluster. Tables declared with SHARD KEY (col) are
// partitioned by that column; tables without one are replicated to every
// shard. Queries route by the planner's shard-feasibility pass: single-shard
// relay, scatter/concat, scatter/merge of partial aggregates, or a typed
// UNSHARDABLE rejection naming the unsupported shape.
//
// Server mode:
//
//	udfrouterd -addr :8090 -shards http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Client modes (used by the CI sharding gate; all speak wire v1 to -addr):
//
//	udfrouterd -loadcorpus -addr URL -scale small     push sharded schema + UDFs + dataset through the router
//	udfrouterd -verify -addr URL -baseline URL        corpus differential: router over N shards vs one udfserverd
//	udfrouterd -shardwrite -addr URL -manifest f.json write single-shard rows; manifest records acks + typed error counts
//	udfrouterd -shardcheck -addr URL -manifest f.json assert every acked row is still readable through the router
//
// -verify exits nonzero on any mismatch; -shardcheck exits nonzero on any
// acked-row loss. -shardwrite keeps going through shard failures, counting
// each typed wire code it sees (the CI gate asserts the kill window produced
// SHARD_UNAVAILABLE/PARTIAL_FAILURE, not untyped errors).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/shard"
	"udfdecorr/internal/storage"
	"udfdecorr/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", ":8090", "listen address (server) or router base URL (client modes)")
		shards = flag.String("shards", "", "server: comma-separated shard base URLs (required)")
		drain  = flag.Duration("drain", 10*time.Second, "server: graceful-shutdown deadline for in-flight requests")

		loadcorpus = flag.Bool("loadcorpus", false, "client: load the sharded bench schema, UDFs and dataset through the router")
		scale      = flag.String("scale", "small", "loadcorpus: dataset scale: small|bench")

		verify   = flag.Bool("verify", false, "client: run the corpus differential against -baseline")
		baseline = flag.String("baseline", "", "verify: base URL of a single-node udfserverd holding the same dataset")

		shardwrite = flag.Bool("shardwrite", false, "client: write single-shard rows, recording acks and typed error counts in -manifest")
		shardcheck = flag.Bool("shardcheck", false, "client: assert every row acked in -manifest is readable through the router")
		manifest   = flag.String("manifest", "shardacked.json", "shardwrite/shardcheck: acked-rows manifest file")
		batches    = flag.Int("batches", 0, "shardwrite: number of writes (0 = until killed)")

		logLevel = flag.String("log-level", "info", "log level: debug|info|warn|error")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bad -log-level %q (want debug|info|warn|error)\n", *logLevel)
		os.Exit(1)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	var err error
	switch {
	case *loadcorpus:
		err = runLoadCorpus(*addr, *scale)
	case *verify:
		err = runVerify(*addr, *baseline)
	case *shardwrite:
		err = runShardWrite(*addr, *manifest, *batches)
	case *shardcheck:
		err = runShardCheck(*addr, *manifest)
	default:
		err = runServer(*addr, *shards, *drain)
	}
	if err != nil {
		slog.Error("udfrouterd failed", "err", err)
		os.Exit(1)
	}
}

func runServer(addr, shards string, drain time.Duration) error {
	if shards == "" {
		return fmt.Errorf("server mode needs -shards URL,URL,... (or pick a client mode)")
	}
	var urls []string
	for _, s := range strings.Split(shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, s)
		}
	}
	r, err := shard.New(urls)
	if err != nil {
		return err
	}
	slog.Info("udfrouterd listening", "addr", addr, "shards", len(urls))

	srv := &http.Server{Addr: addr, Handler: shard.NewHandler(r)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		slog.Info("shutdown signal; draining", "deadline", drain)
		shctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			slog.Warn("drain deadline exceeded, force-closing", "err", err)
			return srv.Close()
		}
		return nil
	}
}

// --------------------------------------------------------------------------
// Wire-v1 client (shared by every client mode)
// --------------------------------------------------------------------------

// rclient is a wire-v1 API client: it requests the enveloped encoding and
// decodes responses through wire.Decode, so failures surface as typed
// *wire.RemoteError whichever wire version the far end actually speaks.
type rclient struct {
	base string
	hc   *http.Client
}

func newRClient(base string) *rclient {
	if !strings.HasPrefix(base, "http") {
		base = "http://localhost" + base
	}
	return &rclient{base: base, hc: &http.Client{Timeout: 5 * time.Minute}}
}

func (c *rclient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.V1Accept)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("POST %s: %w", path, err)
	}
	return wire.Decode(raw, resp.StatusCode, out)
}

func (c *rclient) newSession(settings map[string]any) (string, error) {
	var sess struct {
		Session string `json:"session"`
	}
	if err := c.post("/session", settings, &sess); err != nil {
		return "", err
	}
	if sess.Session == "" {
		return "", fmt.Errorf("session create returned no session id")
	}
	return sess.Session, nil
}

type queryReply struct {
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
}

func (c *rclient) query(session, sql string) (*queryReply, error) {
	var reply queryReply
	if err := c.post("/query", map[string]any{"session": session, "sql": sql}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func (c *rclient) exec(session, script string) error {
	return c.post("/exec", map[string]any{"session": session, "script": script}, nil)
}

// --------------------------------------------------------------------------
// -loadcorpus: sharded schema + UDFs + dataset through the router
// --------------------------------------------------------------------------

func runLoadCorpus(base, scale string) error {
	var cfg bench.Config
	switch scale {
	case "small":
		cfg = bench.SmallConfig()
	case "bench":
		cfg = bench.DefaultConfig()
	default:
		return fmt.Errorf("unknown -scale %q (want small|bench)", scale)
	}
	c := newRClient(base)
	sess, err := c.newSession(map[string]any{"mode": "rewrite"})
	if err != nil {
		return fmt.Errorf("creating session (is the router running?): %w", err)
	}
	schema, err := bench.ShardedSchema()
	if err != nil {
		return err
	}
	if err := c.exec(sess, schema+bench.UDFs+bench.ExtraUDFs); err != nil {
		return fmt.Errorf("installing schema + UDFs: %w", err)
	}
	start := time.Now()
	var rows int
	for _, t := range bench.Generate(cfg) {
		const batch = 256
		for lo := 0; lo < len(t.Rows); lo += batch {
			hi := lo + batch
			if hi > len(t.Rows) {
				hi = len(t.Rows)
			}
			var script strings.Builder
			for _, row := range t.Rows[lo:hi] {
				writeInsert(&script, t.Name, row)
			}
			if err := c.exec(sess, script.String()); err != nil {
				return fmt.Errorf("loading %s rows %d..%d: %w", t.Name, lo, hi, err)
			}
		}
		rows += len(t.Rows)
		slog.Info("table loaded", "table", t.Name, "rows", len(t.Rows))
	}
	fmt.Printf("loadcorpus: scale=%s rows=%d elapsed=%s\n", scale, rows, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeInsert(b *strings.Builder, table string, row storage.Row) {
	b.WriteString("insert into ")
	b.WriteString(table)
	b.WriteString(" values (")
	for i, v := range row {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(");\n")
}

// --------------------------------------------------------------------------
// -verify: corpus differential, router vs single-node baseline
// --------------------------------------------------------------------------

// extraVerify exercises the routed shapes the corpus leaves thin: partial-
// aggregate merges (grouped and scalar, avg needs the sum/count recombine),
// COUNT(*) vs COUNT(col) over shards, a pinned point query and a
// replicated-to-sharded join probe.
var extraVerify = []struct{ name, sql string }{
	{"grouped partial merge", "select custkey, count(*), avg(totalprice), min(totalprice) from orders where custkey <= 30 group by custkey"},
	{"scalar partial merge", "select avg(totalprice), max(totalprice) from orders"},
	{"count star vs col", "select count(*), count(custkey) from orders"},
	{"pinned point query", "select orderkey, totalprice from orders where custkey = 7"},
	{"replicated join probe", "select o.orderkey, c.name from orders o join customer c on o.custkey = c.custkey where o.orderkey <= 80"},
}

// verifyCombos are the session settings the differential runs under: both
// executors, plus the vectorized rewrite path.
var verifyCombos = []map[string]any{
	{"mode": "rewrite", "profile": "sys1"},
	{"mode": "iterative", "profile": "sys1"},
	{"mode": "rewrite", "profile": "sys1", "vectorized": true},
}

func runVerify(routerBase, baselineBase string) error {
	if baselineBase == "" {
		return fmt.Errorf("-verify needs -baseline URL (a single-node udfserverd with the same dataset)")
	}
	rc, bc := newRClient(routerBase), newRClient(baselineBase)
	var checked, rejected, failures int
	for _, combo := range verifyCombos {
		rsess, err := rc.newSession(combo)
		if err != nil {
			return fmt.Errorf("router session %v: %w", combo, err)
		}
		bsess, err := bc.newSession(combo)
		if err != nil {
			return fmt.Errorf("baseline session %v: %w", combo, err)
		}
		check := func(name, sql string) {
			want, err := bc.query(bsess, sql)
			if err != nil {
				failures++
				slog.Error("baseline query failed", "query", name, "combo", combo, "err", err)
				return
			}
			got, err := rc.query(rsess, sql)
			if err != nil {
				failures++
				slog.Error("router query failed", "query", name, "combo", combo, "err", err)
				return
			}
			checked++
			if bench.CanonicalRows(got.Rows) != bench.CanonicalRows(want.Rows) {
				failures++
				slog.Error("differential mismatch", "query", name, "combo", combo,
					"router_rows", got.RowCount, "baseline_rows", want.RowCount)
			}
		}
		for _, q := range bench.Corpus {
			class, ok := bench.ShardClass[q.Name]
			if !ok {
				failures++
				slog.Error("corpus query missing from bench.ShardClass", "query", q.Name)
				continue
			}
			if class == "rejected" {
				// Must fail with a typed UNSHARDABLE naming the shape, never a
				// silently wrong merged answer.
				_, err := rc.query(rsess, q.SQL)
				var rerr *wire.RemoteError
				if !errors.As(err, &rerr) || rerr.Code != wire.CodeUnshardable {
					failures++
					slog.Error("rejected query did not fail typed", "query", q.Name, "err", err)
					continue
				}
				rejected++
				continue
			}
			check(q.Name, q.SQL)
		}
		for _, q := range extraVerify {
			check(q.name, q.sql)
		}
	}
	fmt.Printf("verify: combos=%d checked=%d rejected_typed=%d failures=%d\n",
		len(verifyCombos), checked, rejected, failures)
	if failures > 0 {
		return fmt.Errorf("%d differential failures", failures)
	}
	fmt.Println("all routed queries matched the single-node baseline")
	return nil
}

// --------------------------------------------------------------------------
// -shardwrite / -shardcheck: acked single-shard writes survive shard loss
// --------------------------------------------------------------------------

// shardManifest records every acknowledged single-shard write plus a count of
// each typed wire error code the writer saw (the CI gate asserts a shard kill
// produces typed failures, not garbage).
type shardManifest struct {
	Acked  []ackedRow     `json:"acked"`
	Errors map[string]int `json:"errors,omitempty"`
}

type ackedRow struct {
	OrderKey int64 `json:"orderkey"`
	CustKey  int64 `json:"custkey"`
}

// writeKeyBase keeps shardwrite's keys disjoint from the generated dataset
// (SmallConfig tops out in the low thousands) so -shardcheck can scan them
// back with one predicate.
const writeKeyBase = 1_000_000

func runShardWrite(base, manifestPath string, batches int) error {
	c := newRClient(base)
	sess, err := c.newSession(map[string]any{"mode": "rewrite"})
	if err != nil {
		return fmt.Errorf("creating session (run -loadcorpus first?): %w", err)
	}
	m := shardManifest{Errors: map[string]int{}}
	save := func() error {
		buf, err := json.MarshalIndent(m, "", " ")
		if err != nil {
			return err
		}
		tmp := manifestPath + ".tmp"
		if err := os.WriteFile(tmp, buf, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, manifestPath)
	}
	// The manifest is rewritten after every ack: a kill -9 of this client (or
	// of a shard mid-write) must never leave an acked row unrecorded.
	for i := 0; batches == 0 || i < batches; i++ {
		row := ackedRow{OrderKey: writeKeyBase + int64(i), CustKey: int64(i%997) + 1}
		sql := fmt.Sprintf("insert into orders values (%d, %d, %d.5);", row.OrderKey, row.CustKey, 100+i%900)
		if err := c.exec(sess, sql); err != nil {
			var rerr *wire.RemoteError
			if errors.As(err, &rerr) {
				m.Errors[string(rerr.Code)]++
			} else {
				m.Errors["UNTYPED"]++
				slog.Warn("untyped write failure", "orderkey", row.OrderKey, "err", err)
			}
			// A failed write may need a fresh session (the shard that died holds
			// one leg of it); recreate lazily and keep going.
			if ns, serr := c.newSession(map[string]any{"mode": "rewrite"}); serr == nil {
				sess = ns
			}
			if err := save(); err != nil {
				return err
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		m.Acked = append(m.Acked, row)
		if err := save(); err != nil {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("shardwrite: acked=%d errors=%v manifest=%s\n", len(m.Acked), m.Errors, manifestPath)
	return nil
}

func runShardCheck(base, manifestPath string) error {
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	var m shardManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("parsing manifest %s: %w", manifestPath, err)
	}
	c := newRClient(base)
	sess, err := c.newSession(map[string]any{"mode": "rewrite"})
	if err != nil {
		return err
	}
	reply, err := c.query(sess, fmt.Sprintf("select orderkey, custkey from orders where orderkey >= %d", writeKeyBase))
	if err != nil {
		return fmt.Errorf("scanning written rows (all shards back up?): %w", err)
	}
	got := make(map[string]bool, len(reply.Rows))
	for _, row := range reply.Rows {
		if len(row) == 2 {
			got[row[0]+"|"+row[1]] = true
		}
	}
	var lost []int64
	for _, a := range m.Acked {
		if !got[fmt.Sprintf("%d|%d", a.OrderKey, a.CustKey)] {
			lost = append(lost, a.OrderKey)
		}
	}
	// Error codes seen by the writer, for the log (the CI gate asserts on the
	// manifest directly).
	codes := make([]string, 0, len(m.Errors))
	for code, n := range m.Errors {
		codes = append(codes, fmt.Sprintf("%s=%d", code, n))
	}
	sort.Strings(codes)
	fmt.Printf("shardcheck: acked=%d found=%d lost=%d write_errors=[%s]\n",
		len(m.Acked), len(m.Acked)-len(lost), len(lost), strings.Join(codes, " "))
	if len(lost) > 0 {
		show := lost
		if len(show) > 10 {
			show = show[:10]
		}
		return fmt.Errorf("%d acked rows lost (first: %v)", len(lost), show)
	}
	fmt.Println("every acked single-shard write survived")
	return nil
}
