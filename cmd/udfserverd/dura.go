// Durability-test client modes for the CI recovery gate (and for operators
// validating a deployment's crash safety):
//
//   - -snapshot FILE   captures a manifest of the differential corpus's
//     canonical results plus per-table row counts over a live server.
//   - -verify FILE     re-runs the corpus and asserts results and counts are
//     identical — across a kill -9 + restart this proves recovery.
//   - -durawrite       drives a write-heavy insert load; after every
//     acknowledged batch it atomically rewrites the manifest with the acked
//     row count. The durability contract under -fsync always: every acked
//     row survives kill -9.
//   - -duracheck       asserts the write table holds >= (or, after a
//     graceful restart, ==) the acked rows.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"udfdecorr/internal/bench"
)

// benchTables are the base tables of the bench schema whose row counts the
// corpus manifest pins (see bench.Schema).
var benchTables = []string{
	"customer", "orders", "lineitem", "partsupp", "categorydiscount",
	"partcost", "part", "category", "categoryancestor",
}

// corpusManifest is the pre-kill ground truth the recovery run must match.
type corpusManifest struct {
	// Results maps corpus query name -> canonical row multiset.
	Results map[string]string `json:"results"`
	// RowCounts maps table -> count(*) at capture time.
	RowCounts map[string]int64 `json:"row_counts"`
}

// newIterativeSession opens a session in the deterministic baseline mode.
func newIterativeSession(c *client) (string, error) {
	var sess struct {
		Session string `json:"session"`
	}
	err := c.post("/session", map[string]any{"mode": "iterative", "profile": "sys1"}, &sess)
	if err != nil {
		return "", fmt.Errorf("creating session (is the daemon running?): %w", err)
	}
	return sess.Session, nil
}

func countRows(c *client, session, table string) (int64, error) {
	var reply queryReply
	if err := c.post("/query", map[string]any{
		"session": session, "sql": "select count(*) from " + table}, &reply); err != nil {
		return 0, err
	}
	if len(reply.Rows) != 1 || len(reply.Rows[0]) != 1 {
		return 0, fmt.Errorf("count(*) from %s: unexpected shape %v", table, reply.Rows)
	}
	return strconv.ParseInt(reply.Rows[0][0], 10, 64)
}

func captureManifest(base string) (*corpusManifest, error) {
	c := newHTTPClient(base)
	session, err := newIterativeSession(c)
	if err != nil {
		return nil, err
	}
	m := &corpusManifest{Results: map[string]string{}, RowCounts: map[string]int64{}}
	for _, q := range bench.Corpus {
		var reply queryReply
		if err := c.post("/query", map[string]any{"session": session, "sql": q.SQL}, &reply); err != nil {
			return nil, fmt.Errorf("corpus %s: %w", q.Name, err)
		}
		m.Results[q.Name] = canonical(reply.Rows)
	}
	for _, t := range benchTables {
		n, err := countRows(c, session, t)
		if err != nil {
			return nil, err
		}
		m.RowCounts[t] = n
	}
	return m, nil
}

func runCorpusSnapshot(base, path string) error {
	m, err := captureManifest(base)
	if err != nil {
		return err
	}
	if err := writeJSONFileAtomic(path, m); err != nil {
		return err
	}
	log.Printf("corpus manifest: %d queries, %d tables -> %s", len(m.Results), len(m.RowCounts), path)
	return nil
}

func runCorpusVerify(base, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want corpusManifest
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("manifest %s: %w", path, err)
	}
	got, err := captureManifest(base)
	if err != nil {
		return err
	}
	var bad []string
	for name, w := range want.Results {
		if got.Results[name] != w {
			bad = append(bad, "query "+name)
		}
	}
	for table, w := range want.RowCounts {
		if got.RowCounts[table] != w {
			bad = append(bad, fmt.Sprintf("row count %s: %d != %d", table, got.RowCounts[table], w))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("recovered state diverges from pre-kill manifest:\n  %s", strings.Join(bad, "\n  "))
	}
	log.Printf("recovery verified: %d corpus queries and %d row counts identical to %s",
		len(want.Results), len(want.RowCounts), path)
	return nil
}

// ackManifest records the write load's durability high-water mark.
type ackManifest struct {
	Table string `json:"table"`
	// AckedRows is the number of rows the server acknowledged. After a crash,
	// recovery must hold at least this many (a final in-flight batch may have
	// reached the WAL without its ack reaching us).
	AckedRows int64 `json:"acked_rows"`
	// NextKey makes restarts of the writer continue with fresh keys.
	NextKey int64 `json:"next_key"`
}

func readAckManifest(path string) (*ackManifest, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m ackManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}

// runDuraWrite drives acknowledged insert batches into table until batches
// are exhausted or the server dies (e.g. the harness kill -9s it mid-load —
// that exit is expected, so connection errors after at least one acked batch
// are reported but not fatal).
func runDuraWrite(base, table, manifestPath string, batches, batchRows int) error {
	c := newHTTPClient(base)
	session, err := newIterativeSession(c)
	if err != nil {
		return err
	}
	m, err := readAckManifest(manifestPath)
	if err != nil {
		return err
	}
	if m == nil {
		m = &ackManifest{Table: table}
	}
	if m.Table != table {
		return fmt.Errorf("manifest %s is for table %q, not %q", manifestPath, m.Table, table)
	}

	if err := c.post("/exec", map[string]any{"session": session,
		"script": fmt.Sprintf("create table %s (k int primary key, v varchar);", table)}, nil); err != nil {
		if !strings.Contains(err.Error(), "already exists") {
			return err
		}
	}

	// A kill -9 can persist rows of a batch whose ack never arrived, so the
	// manifest's NextKey may lag what is actually in the table. Resume past
	// the real maximum to keep keys fresh across writer restarts.
	var maxReply queryReply
	if err := c.post("/query", map[string]any{"session": session,
		"sql": "select max(k) from " + table}, &maxReply); err != nil {
		return err
	}
	if len(maxReply.Rows) == 1 && len(maxReply.Rows[0]) == 1 && maxReply.Rows[0][0] != "NULL" {
		maxKey, err := strconv.ParseInt(maxReply.Rows[0][0], 10, 64)
		if err != nil {
			return fmt.Errorf("max(k) from %s: %w", table, err)
		}
		if maxKey+1 > m.NextKey {
			m.NextKey = maxKey + 1
		}
	}

	for b := 0; batches == 0 || b < batches; b++ {
		var script strings.Builder
		for i := 0; i < batchRows; i++ {
			k := m.NextKey + int64(i)
			fmt.Fprintf(&script, "insert into %s values (%d, 'batch-%d-row-%d');\n", table, k, b, i)
		}
		if err := c.post("/exec", map[string]any{"session": session, "script": script.String()}, nil); err != nil {
			// Mid-load kill: the unacked batch is allowed to be lost (or,
			// if its WAL append won the race, to survive — duracheck uses >=).
			if m.AckedRows > 0 {
				log.Printf("durawrite: server gone after %d acked rows (%v) — expected under kill -9", m.AckedRows, err)
				return nil
			}
			return err
		}
		m.AckedRows += int64(batchRows)
		m.NextKey += int64(batchRows)
		if err := writeJSONFileAtomic(manifestPath, m); err != nil {
			return err
		}
	}
	log.Printf("durawrite: %d rows acked into %s (manifest %s)", m.AckedRows, table, manifestPath)
	return nil
}

func runDuraCheck(base, table, manifestPath string, exact bool) error {
	m, err := readAckManifest(manifestPath)
	if err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("manifest %s does not exist (did the write load run?)", manifestPath)
	}
	if m.Table != table {
		return fmt.Errorf("manifest %s is for table %q, not %q", manifestPath, m.Table, table)
	}
	c := newHTTPClient(base)
	session, err := newIterativeSession(c)
	if err != nil {
		return err
	}
	n, err := countRows(c, session, table)
	if err != nil {
		return err
	}
	switch {
	case exact && n != m.AckedRows:
		return fmt.Errorf("durability violation: %s has %d rows, acked exactly %d (graceful restart must lose and invent nothing)", table, n, m.AckedRows)
	case !exact && n < m.AckedRows:
		return fmt.Errorf("durability violation: %s has %d rows but %d were acknowledged pre-kill", table, n, m.AckedRows)
	}
	log.Printf("duracheck: %s holds %d rows >= %d acked (exact=%v) — acked writes survived", table, n, m.AckedRows, exact)
	return nil
}

func writeJSONFileAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
