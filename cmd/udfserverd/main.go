// Command udfserverd is the concurrent query daemon: it serves the engine's
// HTTP/JSON API (sessions, /query, /stream, /exec, /explain, /checkpoint,
// /stats) over a shared catalog+storage with the cross-session plan/rewrite
// cache. On SIGINT/SIGTERM it shuts down gracefully: the listener closes,
// in-flight sessions drain up to the -drain deadline, then remaining
// connections are force-closed (cancelling their queries through the
// request contexts); durable servers take a final checkpoint before exit.
//
// Server mode:
//
//	udfserverd -addr :8080 -dataset small -cache 256 -workers 32 -parallelism 4 -drain 10s
//
// Durable server mode — state survives restarts (and kill -9, with
// -fsync always): DDL and inserts are written ahead to a segmented WAL
// under -data-dir, checkpoints snapshot the store and truncate the log, and
// startup replays snapshot + log tail. On a data dir that already holds
// state, -dataset is ignored (the recovered state wins); on a fresh dir the
// dataset is loaded once and immediately checkpointed:
//
//	udfserverd -addr :8080 -data-dir ./data -fsync always -checkpoint-every 1m
//
// Load-client mode (-load) replays the shared differential corpus against a
// running daemon from N concurrent clients over the streaming endpoint,
// checks every completed response against a serial baseline, and reports
// QPS, full-stream latency, time-to-first-row percentiles and the
// server-side plan-cache hit rate. -cancel-frac cancels that fraction of
// streams after the first row to exercise the server's drain path:
//
//	udfserverd -load -addr http://localhost:8080 -clients 8 -rounds 3 -cancel-frac 0.2
//
// Mixed read/write load mode (-mixed, see mixed.go) drives N writers posting
// acknowledged INSERT batches alongside M readers replaying queries, and
// reports write QPS — the number that should scale with the writer count
// under MVCC snapshot reads and group-commit fsync batching:
//
//	udfserverd -mixed -addr http://localhost:8080 -mixed-writers 4 -mixed-readers 2 -mixed-duration 10s
//
// Durability-test client modes (see dura.go; used by the CI recovery gate):
//
//	udfserverd -snapshot pre.json  -addr URL     capture corpus results + row counts
//	udfserverd -verify pre.json    -addr URL     assert they are unchanged
//	udfserverd -durawrite -manifest acked.json   write-heavy load; manifest records acked rows
//	udfserverd -duracheck -manifest acked.json   assert every acked row survived
//
// Observability: logs are structured (log/slog text to stderr; -log-level
// debug|info|warn|error), -slow-query DURATION emits a "slow query" line with
// the trace ID, SQL, wait/run breakdown and row count for every query at or
// above the threshold, /metrics serves Prometheus text, and -pprof ADDR
// serves the net/http/pprof profiling handlers on a separate listener
// (e.g. -pprof localhost:6060, then `go tool pprof
// http://localhost:6060/debug/pprof/profile`). Off by default.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/obs"
	"udfdecorr/internal/server"
	"udfdecorr/internal/wal"
	"udfdecorr/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (server) or base URL (load client)")
		dataset    = flag.String("dataset", "small", "preloaded dataset: none|small|bench")
		cache      = flag.Int("cache", 256, "plan cache capacity (0 disables)")
		workers    = flag.Int("workers", 32, "worker pool: max concurrently executing query-local workers")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight sessions")
		load       = flag.Bool("load", false, "run as load-generating client instead of server")
		clients    = flag.Int("clients", 8, "load mode: concurrent client goroutines")
		rounds     = flag.Int("rounds", 3, "load mode: corpus replays per client")
		cancelFrac = flag.Float64("cancel-frac", 0, "load mode: fraction of streams cancelled after the first row")
		par        = flag.Int("parallelism", 0, "server: default intra-query degree for sessions; load: degree requested by vectorized client sessions (0 = serial)")

		dataDir   = flag.String("data-dir", "", "durable mode: data directory for WAL + checkpoints (empty = in-memory)")
		fsync     = flag.String("fsync", "always", "durable mode: WAL fsync policy: always|none|<interval, e.g. 250ms>")
		ckptEvery = flag.Duration("checkpoint-every", 0, "durable mode: periodic checkpoint interval (0 = only on graceful shutdown)")
		walRetain = flag.Int("wal-retain", 4, "durable mode: sealed WAL segments kept below each checkpoint (the replica catch-up window; 0 deletes immediately)")

		follow     = flag.String("follow", "", "follower mode: leader base URL to replicate from (runs as a read-only replica)")
		catchupDir = flag.String("catchup-dir", "", "follower mode: dead leader's data dir to drain at promotion (used by SIGUSR1 and /repl/promote requests without an explicit dir)")

		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		slowQuery = flag.Duration("slow-query", 0, "server: log queries at or above this duration (0 = off)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")

		mixed    = flag.Bool("mixed", false, "run as mixed read/write load client (-mixed-writers inserters + -mixed-readers queriers)")
		mWriters = flag.Int("mixed-writers", 4, "mixed mode: concurrent writer goroutines")
		mReaders = flag.Int("mixed-readers", 2, "mixed mode: concurrent reader goroutines")
		mDur     = flag.Duration("mixed-duration", 5*time.Second, "mixed mode: load duration")

		snapshotOut = flag.String("snapshot", "", "client: capture corpus results + row counts to this manifest and exit")
		verifyIn    = flag.String("verify", "", "client: verify corpus results + row counts against this manifest and exit")
		duraWrite   = flag.Bool("durawrite", false, "client: run the write-heavy durability load (see -manifest/-batches)")
		duraCheck   = flag.Bool("duracheck", false, "client: verify the write-load manifest against the server")
		manifest    = flag.String("manifest", "acked.json", "durawrite/duracheck: acked-rows manifest file")
		batches     = flag.Int("batches", 0, "durawrite: number of insert batches (0 = until killed)")
		batchRows   = flag.Int("batch-rows", 32, "durawrite: rows per acknowledged insert batch")
		writeTable  = flag.String("write-table", "dura_kv", "durawrite/duracheck: target table")
		exact       = flag.Bool("exact", false, "duracheck: require row count == acked (graceful restart), not >=")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	switch {
	case *load:
		err = runLoad(*addr, *clients, *rounds, *par, *cancelFrac)
	case *mixed:
		err = runMixed(*addr, *mWriters, *mReaders, *batchRows, *writeTable, *mDur)
	case *snapshotOut != "":
		err = runCorpusSnapshot(*addr, *snapshotOut)
	case *verifyIn != "":
		err = runCorpusVerify(*addr, *verifyIn)
	case *duraWrite:
		err = runDuraWrite(*addr, *writeTable, *manifest, *batches, *batchRows)
	case *duraCheck:
		err = runDuraCheck(*addr, *writeTable, *manifest, *exact)
	case *follow != "":
		err = runFollower(followerConfig{
			addr: *addr, leader: *follow, catchupDir: *catchupDir,
			cacheSize: *cache, workers: *workers, parallelism: *par,
			drain: *drain, slowQuery: *slowQuery,
		})
	default:
		err = runServer(serverConfig{
			addr: *addr, dataset: *dataset, cacheSize: *cache, workers: *workers,
			parallelism: *par, drain: *drain,
			dataDir: *dataDir, fsync: *fsync, checkpointEvery: *ckptEvery,
			walRetain: *walRetain, slowQuery: *slowQuery,
		})
	}
	if err != nil {
		slog.Error("udfserverd failed", "err", err)
		os.Exit(1)
	}
}

// buildLogger constructs the process-wide structured logger (slog text to
// stderr) at the requested level.
func buildLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// servePprof exposes the net/http/pprof handlers on their own listener so
// profiling traffic never mixes with the query API (and the API mux never
// accidentally exposes profiling data).
func servePprof(addr string) {
	slog.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, nil); err != nil {
		slog.Error("pprof server exited", "err", err)
	}
}

type serverConfig struct {
	addr, dataset   string
	cacheSize       int
	workers         int
	parallelism     int
	drain           time.Duration
	dataDir         string
	fsync           string
	checkpointEvery time.Duration
	walRetain       int
	slowQuery       time.Duration
}

func runServer(cfg serverConfig) error {
	boot, err := bootEngine(cfg.dataset, cfg.dataDir, cfg.fsync, cfg.walRetain)
	if err != nil {
		return err
	}
	svc := server.NewServiceFromEngine(boot, server.Options{
		CacheSize: cfg.cacheSize, MaxConcurrent: cfg.workers, DefaultParallelism: cfg.parallelism,
		SlowQueryThreshold: cfg.slowQuery, Logger: slog.Default()})
	slog.Info("udfserverd listening", "addr", cfg.addr, "dataset", cfg.dataset,
		"cache", cfg.cacheSize, "workers", cfg.workers, "parallelism", cfg.parallelism,
		"durable", svc.Durable(), "slow_query", cfg.slowQuery)

	srv := &http.Server{Addr: cfg.addr, Handler: server.NewHandler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints bound both recovery time and on-disk log growth.
	ckptDone := make(chan struct{})
	if svc.Durable() && cfg.checkpointEvery > 0 {
		ticker := time.NewTicker(cfg.checkpointEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := svc.Checkpoint(); err != nil {
						slog.Error("periodic checkpoint failed", "err", err)
					} else if st := svc.Stats().Durability; st != nil {
						slog.Info("checkpoint written", "n", st.Checkpoints, "wal_bytes", st.WALBytes)
					}
				case <-ckptDone:
					return
				}
			}
		}()
	}
	defer close(ckptDone)

	finalCheckpoint := func() {
		if !svc.Durable() {
			return
		}
		if err := svc.Checkpoint(); err != nil {
			slog.Error("shutdown checkpoint failed", "err", err)
		} else {
			slog.Info("shutdown checkpoint written")
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		slog.Info("shutdown signal; draining", "sessions", svc.SessionCount(), "deadline", cfg.drain)
		shctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			// Deadline hit: force-close remaining connections, which cancels
			// their queries through the request contexts.
			slog.Warn("drain deadline exceeded, force-closing", "err", err)
			err = srv.Close()
			finalCheckpoint()
			return err
		}
		slog.Info("drained cleanly")
		finalCheckpoint()
		return nil
	}
}

// bootEngine builds the serving engine: volatile with the requested dataset,
// or durable over dataDir (recovering existing state; a fresh dir is seeded
// with the dataset and checkpointed so startup replay stays cheap).
func bootEngine(dataset, dataDir, fsync string, walRetain int) (*engine.Engine, error) {
	var cfg *bench.Config
	switch dataset {
	case "none":
	case "small", "bench":
		c := bench.SmallConfig()
		if dataset == "bench" {
			c = bench.Config{Customers: 10_000, OrdersPerCustomer: 5, Parts: 20_000,
				LineitemsPerPart: 3, Categories: 200, Seed: 20140331}
		}
		cfg = &c
	default:
		return nil, fmt.Errorf("unknown dataset %q (want none|small|bench)", dataset)
	}

	if dataDir == "" {
		e := engine.New(engine.SYS1, engine.ModeRewrite)
		if cfg != nil {
			if err := bench.Populate(e, *cfg); err != nil {
				return nil, err
			}
			if err := e.ExecScript(bench.ExtraUDFs); err != nil {
				return nil, err
			}
		}
		return e, nil
	}

	policy, interval, err := wal.ParseSyncPolicy(fsync)
	if err != nil {
		return nil, err
	}
	e, err := engine.OpenDurable(dataDir, engine.SYS1, engine.ModeRewrite,
		engine.DurabilityOptions{Sync: policy, SyncInterval: interval, RetainSegments: walRetain})
	if err != nil {
		return nil, err
	}
	st := e.Durable.Stats()
	// ANY recovered record means the dir holds prior state (possibly
	// functions-only): never re-seed over it, and never let the seed-failure
	// cleanup below touch it.
	if st.RecoveredRecords > 0 || len(e.Cat.Tables()) > 0 || len(e.Cat.Functions()) > 0 {
		slog.Info("recovered data dir", "dir", dataDir, "records_replayed", st.RecoveredRecords,
			"torn_bytes", st.TornBytes, "wal_bytes", st.WALBytes)
		return e, nil
	}
	if cfg == nil {
		slog.Info("opened empty data dir", "dir", dataDir)
		return e, nil
	}
	slog.Info("seeding empty data dir", "dir", dataDir, "dataset", dataset)
	seed := func() error {
		if err := bench.Populate(e, *cfg); err != nil {
			return err
		}
		if err := e.ExecScript(bench.ExtraUDFs); err != nil {
			return err
		}
		// Fold the seed load into a snapshot so the next start replays a
		// checkpoint, not the whole insert history.
		return e.Checkpoint()
	}
	if err := seed(); err != nil {
		// A half-seeded data dir must not masquerade as recovered state on
		// the next start: wipe the log files this failed seed created (the
		// dir held none before — the catalog was empty) and fail loudly.
		if cerr := e.Durable.Close(); cerr != nil {
			slog.Error("closing failed seed", "err", cerr)
		}
		if rerr := removeWALFiles(dataDir); rerr != nil {
			return nil, fmt.Errorf("seeding dataset: %w (and cleaning up the partial seed failed: %v — delete %s manually)", err, rerr, dataDir)
		}
		return nil, fmt.Errorf("seeding dataset: %w (partial seed removed; %s is empty again)", err, dataDir)
	}
	return e, nil
}

// removeWALFiles deletes the log segments and snapshot files in dir —
// only the names the WAL owns, nothing else.
func removeWALFiles(dir string) error {
	for _, pattern := range []string{"wal-*.seg", "checkpoint.snap", "checkpoint.snap.tmp"} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// --------------------------------------------------------------------------
// Load client
// --------------------------------------------------------------------------

type client struct {
	base string
	http *http.Client
	// v1 requests the versioned wire envelope, so failures decode to typed
	// *wire.RemoteError values carrying a code and leader hint. The
	// durability clients stay on v0 deliberately: their failure mode is
	// asserted against the legacy error strings.
	v1 bool
}

// newHTTPClient builds an API client, allowing the -addr :8080 shorthand.
func newHTTPClient(base string) *client {
	if !strings.HasPrefix(base, "http") {
		base = "http://localhost" + base
	}
	return &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}
}

func (c *client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.v1 {
		req.Header.Set("Accept", wire.V1Accept)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("POST %s: %w", path, err)
	}
	if c.v1 {
		return wire.Decode(raw, resp.StatusCode, out)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

type queryReply struct {
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
	CacheHit bool       `json:"cache_hit"`
}

// streamOutcome is one /stream replay: the collected rows (when the stream
// ran to completion), time to first row, full-stream latency, and whether
// the client cancelled mid-stream.
type streamOutcome struct {
	rows      [][]string
	ttfr      time.Duration
	total     time.Duration
	gotFirst  bool
	cancelled bool
}

// stream replays one query over the NDJSON streaming endpoint. With
// cancelAfterFirstRow the request context is cancelled as soon as a row
// arrives, exercising the server's mid-stream drain path.
func (c *client) stream(session, sql string, cancelAfterFirstRow bool) (*streamOutcome, error) {
	body, err := json.Marshal(map[string]any{"session": session, "sql": sql})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return nil, fmt.Errorf("POST /stream: status %d: %s", resp.StatusCode, e.Error)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := &streamOutcome{}
	sawHeader, done := false, false
	for sc.Scan() {
		var line struct {
			Cols  []string `json:"cols"`
			Row   []string `json:"row"`
			Done  bool     `json:"done"`
			Error string   `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch {
		case !sawHeader:
			sawHeader = true
		case line.Error != "":
			return nil, fmt.Errorf("stream error: %s", line.Error)
		case line.Done:
			done = true
		default:
			if !out.gotFirst {
				out.gotFirst = true
				out.ttfr = time.Since(t0)
			}
			out.rows = append(out.rows, line.Row)
			if cancelAfterFirstRow {
				out.cancelled = true
				out.total = time.Since(t0)
				cancel() // hang up mid-stream; the server must drain cleanly
				return out, nil
			}
		}
		if done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("stream ended without trailer (server died mid-stream?)")
	}
	out.total = time.Since(t0)
	return out, nil
}

// canonical renders a row multiset order-insensitively for comparison
// (bench.CanonicalRows: floats at 9 significant digits, since parallel
// aggregation may re-associate additions).
func canonical(rows [][]string) string { return bench.CanonicalRows(rows) }

// sessionCombo is one client's session settings.
type sessionCombo struct {
	mode       string
	profile    string
	vectorized bool
}

var combos = []sessionCombo{
	{"rewrite", "sys1", false},
	{"rewrite", "sys1", true},
	{"costbased", "sys1", false},
	{"rewrite", "sys2", true},
	{"iterative", "sys1", false},
	{"costbased", "sys2", true},
}

func runLoad(base string, clients, rounds, parallelism int, cancelFrac float64) error {
	c := newHTTPClient(base)
	base = c.base

	// Serial baseline on a dedicated iterative session (ground truth).
	var sess struct {
		Session string `json:"session"`
	}
	if err := c.post("/session", map[string]any{"mode": "iterative", "profile": "sys1"}, &sess); err != nil {
		return fmt.Errorf("creating baseline session (is the daemon running?): %w", err)
	}
	baseline := make(map[string]string, len(bench.Corpus))
	for _, q := range bench.Corpus {
		var reply queryReply
		if err := c.post("/query", map[string]any{"session": sess.Session, "sql": q.SQL}, &reply); err != nil {
			return fmt.Errorf("baseline %s: %w", q.Name, err)
		}
		baseline[q.Name] = canonical(reply.Rows)
	}
	slog.Info("baseline recorded", "corpus_queries", len(bench.Corpus))

	// Latency distributions go into obs histograms (the same type behind the
	// server's /metrics): fixed memory however long the run, percentile reads
	// within 2× bucket resolution. The true max is tracked exactly alongside.
	type stats struct {
		queries      int64
		mismatches   int64
		cancelled    int64
		rowsStreamed int64
		lat          *obs.Histogram
		ttfr         *obs.Histogram
		latMax       time.Duration
		ttfrMax      time.Duration
	}
	results := make([]stats, clients)
	for i := range results {
		results[i].lat = obs.NewHistogram()
		results[i].ttfr = obs.NewHistogram()
	}
	start := time.Now()
	var wg sync.WaitGroup
	// Sized for the worst case (every query of every client mismatching):
	// a send must never block, or a result-corrupting server bug would
	// deadlock the load client instead of failing it.
	errs := make(chan error, clients*(1+rounds*len(bench.Corpus)))
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			combo := combos[i%len(combos)]
			cl := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}
			// Deterministic per-client stream-cancellation choices.
			rng := rand.New(rand.NewSource(int64(i) + 1))
			var mine struct {
				Session string `json:"session"`
			}
			sessionReq := map[string]any{
				"mode": combo.mode, "profile": combo.profile, "vectorized": combo.vectorized,
			}
			if combo.vectorized && parallelism > 0 {
				sessionReq["parallelism"] = parallelism
			}
			if err := cl.post("/session", sessionReq, &mine); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				for _, q := range bench.Corpus {
					cancelThis := rng.Float64() < cancelFrac
					out, err := cl.stream(mine.Session, q.SQL, cancelThis)
					if err != nil {
						errs <- fmt.Errorf("client %d (%+v) %s: %w", i, combo, q.Name, err)
						return
					}
					results[i].queries++
					results[i].rowsStreamed += int64(len(out.rows))
					if out.gotFirst {
						results[i].ttfr.Observe(out.ttfr)
						if out.ttfr > results[i].ttfrMax {
							results[i].ttfrMax = out.ttfr
						}
					}
					if out.cancelled {
						results[i].cancelled++
						continue // a partial result can't be verified
					}
					results[i].lat.Observe(out.total)
					if out.total > results[i].latMax {
						results[i].latMax = out.total
					}
					if canonical(out.rows) != baseline[q.Name] {
						results[i].mismatches++
						errs <- fmt.Errorf("client %d (%+v) %s: rows differ from serial baseline", i, combo, q.Name)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	failed := false
	for err := range errs {
		failed = true
		slog.Error("load client", "err", err)
	}

	lat, ttfr := obs.NewHistogram(), obs.NewHistogram()
	var latMax, ttfrMax time.Duration
	var total, cancelled, rowsStreamed int64
	for _, r := range results {
		total += r.queries
		cancelled += r.cancelled
		rowsStreamed += r.rowsStreamed
		lat.Merge(r.lat)
		ttfr.Merge(r.ttfr)
		if r.latMax > latMax {
			latMax = r.latMax
		}
		if r.ttfrMax > ttfrMax {
			ttfrMax = r.ttfrMax
		}
	}
	fmt.Printf("clients=%d rounds=%d queries=%d cancelled=%d rows-streamed=%d elapsed=%s\n",
		clients, rounds, total, cancelled, rowsStreamed, elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Printf("throughput: %.1f queries/sec\n", float64(total)/elapsed.Seconds())
	}
	fmt.Printf("latency (full stream): p50=%s p95=%s p99=%s max=%s\n",
		lat.Quantile(0.50).Round(time.Microsecond), lat.Quantile(0.95).Round(time.Microsecond),
		lat.Quantile(0.99).Round(time.Microsecond), latMax.Round(time.Microsecond))
	fmt.Printf("time-to-first-row: p50=%s p95=%s max=%s\n",
		ttfr.Quantile(0.50).Round(time.Microsecond), ttfr.Quantile(0.95).Round(time.Microsecond),
		ttfrMax.Round(time.Microsecond))

	// Server-side cache effectiveness.
	resp, err := c.http.Get(base + "/stats")
	if err == nil {
		defer resp.Body.Close()
		var st server.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Printf("server plan cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d evictions, %d deduped prepares\n",
				st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRate(), st.Cache.Size, st.Cache.Evictions,
				st.PrepareDeduped)
			fmt.Printf("server cancelled queries: %d (errors: %d)\n", st.QueriesCancelled, st.QueryErrors)
			fmt.Printf("server queries by mode: %v\n", st.QueriesByMode)
			fmt.Printf("server parallel: pool=%d workers, %d parallel queries, %d morsels, %d worker launches, %d admission waits\n",
				st.Parallel.WorkersConfigured, st.Parallel.ParallelQueries,
				st.Parallel.MorselsExecuted, st.Parallel.WorkerLaunches, st.Parallel.AdmissionWaits)
			fmt.Printf("server query latency: p50=%dµs p95=%dµs p99=%dµs over %d queries (slow: %d)\n",
				st.QueryLatency.P50Micro, st.QueryLatency.P95Micro, st.QueryLatency.P99Micro,
				st.QueryLatency.Count, st.SlowQueries)
		}
	}
	if failed {
		os.Exit(1)
	}
	if cancelled > 0 {
		fmt.Printf("all completed streams matched the serial baseline (%d cancelled mid-stream)\n", cancelled)
	} else {
		fmt.Println("all responses matched the serial baseline")
	}
	return nil
}
