// Command udfserverd is the concurrent query daemon: it serves the engine's
// HTTP/JSON API (sessions, /query, /stream, /exec, /explain, /stats) over a
// shared catalog+storage with the cross-session plan/rewrite cache. On
// SIGINT/SIGTERM it shuts down gracefully: the listener closes, in-flight
// sessions drain up to the -drain deadline, then remaining connections are
// force-closed (cancelling their queries through the request contexts).
//
// Server mode:
//
//	udfserverd -addr :8080 -dataset small -cache 256 -workers 32 -parallelism 4 -drain 10s
//
// Load-client mode (-load) replays the shared differential corpus against a
// running daemon from N concurrent clients over the streaming endpoint,
// checks every completed response against a serial baseline, and reports
// QPS, full-stream latency, time-to-first-row percentiles and the
// server-side plan-cache hit rate. -cancel-frac cancels that fraction of
// streams after the first row to exercise the server's drain path:
//
//	udfserverd -load -addr http://localhost:8080 -clients 8 -rounds 3 -cancel-frac 0.2
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (server) or base URL (load client)")
		dataset    = flag.String("dataset", "small", "preloaded dataset: none|small|bench")
		cache      = flag.Int("cache", 256, "plan cache capacity (0 disables)")
		workers    = flag.Int("workers", 32, "worker pool: max concurrently executing query-local workers")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight sessions")
		load       = flag.Bool("load", false, "run as load-generating client instead of server")
		clients    = flag.Int("clients", 8, "load mode: concurrent client goroutines")
		rounds     = flag.Int("rounds", 3, "load mode: corpus replays per client")
		cancelFrac = flag.Float64("cancel-frac", 0, "load mode: fraction of streams cancelled after the first row")
		par        = flag.Int("parallelism", 0, "server: default intra-query degree for sessions; load: degree requested by vectorized client sessions (0 = serial)")
	)
	flag.Parse()

	if *load {
		if err := runLoad(*addr, *clients, *rounds, *par, *cancelFrac); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServer(*addr, *dataset, *cache, *workers, *par, *drain); err != nil {
		log.Fatal(err)
	}
}

func runServer(addr, dataset string, cacheSize, workers, parallelism int, drain time.Duration) error {
	boot, err := bootEngine(dataset)
	if err != nil {
		return err
	}
	svc := server.NewServiceFromEngine(boot, server.Options{
		CacheSize: cacheSize, MaxConcurrent: workers, DefaultParallelism: parallelism})
	log.Printf("udfserverd listening on %s (dataset=%s cache=%d workers=%d parallelism=%d)",
		addr, dataset, cacheSize, workers, parallelism)

	srv := &http.Server{Addr: addr, Handler: server.NewHandler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("udfserverd: shutdown signal; draining %d sessions (deadline %s)",
			svc.SessionCount(), drain)
		shctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			// Deadline hit: force-close remaining connections, which cancels
			// their queries through the request contexts.
			log.Printf("udfserverd: drain deadline exceeded (%v), force-closing", err)
			return srv.Close()
		}
		log.Printf("udfserverd: drained cleanly")
		return nil
	}
}

// bootEngine loads the requested dataset into a fresh catalog+store.
func bootEngine(dataset string) (*engine.Engine, error) {
	switch dataset {
	case "none":
		return engine.New(engine.SYS1, engine.ModeRewrite), nil
	case "small", "bench":
		cfg := bench.SmallConfig()
		if dataset == "bench" {
			cfg = bench.Config{Customers: 10_000, OrdersPerCustomer: 5, Parts: 20_000,
				LineitemsPerPart: 3, Categories: 200, Seed: 20140331}
		}
		e, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, cfg)
		if err != nil {
			return nil, err
		}
		if err := e.ExecScript(bench.ExtraUDFs); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want none|small|bench)", dataset)
	}
}

// --------------------------------------------------------------------------
// Load client
// --------------------------------------------------------------------------

type client struct {
	base string
	http *http.Client
}

func (c *client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("POST %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

type queryReply struct {
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
	CacheHit bool       `json:"cache_hit"`
}

// streamOutcome is one /stream replay: the collected rows (when the stream
// ran to completion), time to first row, full-stream latency, and whether
// the client cancelled mid-stream.
type streamOutcome struct {
	rows      [][]string
	ttfr      time.Duration
	total     time.Duration
	gotFirst  bool
	cancelled bool
}

// stream replays one query over the NDJSON streaming endpoint. With
// cancelAfterFirstRow the request context is cancelled as soon as a row
// arrives, exercising the server's mid-stream drain path.
func (c *client) stream(session, sql string, cancelAfterFirstRow bool) (*streamOutcome, error) {
	body, err := json.Marshal(map[string]any{"session": session, "sql": sql})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return nil, fmt.Errorf("POST /stream: status %d: %s", resp.StatusCode, e.Error)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := &streamOutcome{}
	sawHeader, done := false, false
	for sc.Scan() {
		var line struct {
			Cols  []string `json:"cols"`
			Row   []string `json:"row"`
			Done  bool     `json:"done"`
			Error string   `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch {
		case !sawHeader:
			sawHeader = true
		case line.Error != "":
			return nil, fmt.Errorf("stream error: %s", line.Error)
		case line.Done:
			done = true
		default:
			if !out.gotFirst {
				out.gotFirst = true
				out.ttfr = time.Since(t0)
			}
			out.rows = append(out.rows, line.Row)
			if cancelAfterFirstRow {
				out.cancelled = true
				out.total = time.Since(t0)
				cancel() // hang up mid-stream; the server must drain cleanly
				return out, nil
			}
		}
		if done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("stream ended without trailer (server died mid-stream?)")
	}
	out.total = time.Since(t0)
	return out, nil
}

// canonical renders a row multiset order-insensitively for comparison
// (bench.CanonicalRows: floats at 9 significant digits, since parallel
// aggregation may re-associate additions).
func canonical(rows [][]string) string { return bench.CanonicalRows(rows) }

// sessionCombo is one client's session settings.
type sessionCombo struct {
	mode       string
	profile    string
	vectorized bool
}

var combos = []sessionCombo{
	{"rewrite", "sys1", false},
	{"rewrite", "sys1", true},
	{"costbased", "sys1", false},
	{"rewrite", "sys2", true},
	{"iterative", "sys1", false},
	{"costbased", "sys2", true},
}

func runLoad(base string, clients, rounds, parallelism int, cancelFrac float64) error {
	if !strings.HasPrefix(base, "http") {
		base = "http://localhost" + base // allow -addr :8080 shorthand
	}
	c := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}

	// Serial baseline on a dedicated iterative session (ground truth).
	var sess struct {
		Session string `json:"session"`
	}
	if err := c.post("/session", map[string]any{"mode": "iterative", "profile": "sys1"}, &sess); err != nil {
		return fmt.Errorf("creating baseline session (is the daemon running?): %w", err)
	}
	baseline := make(map[string]string, len(bench.Corpus))
	for _, q := range bench.Corpus {
		var reply queryReply
		if err := c.post("/query", map[string]any{"session": sess.Session, "sql": q.SQL}, &reply); err != nil {
			return fmt.Errorf("baseline %s: %w", q.Name, err)
		}
		baseline[q.Name] = canonical(reply.Rows)
	}
	log.Printf("baseline recorded: %d corpus queries", len(bench.Corpus))

	type stats struct {
		queries      int64
		mismatches   int64
		cancelled    int64
		rowsStreamed int64
		latencies    []time.Duration
		ttfrs        []time.Duration
	}
	results := make([]stats, clients)
	start := time.Now()
	var wg sync.WaitGroup
	// Sized for the worst case (every query of every client mismatching):
	// a send must never block, or a result-corrupting server bug would
	// deadlock the load client instead of failing it.
	errs := make(chan error, clients*(1+rounds*len(bench.Corpus)))
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			combo := combos[i%len(combos)]
			cl := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}
			// Deterministic per-client stream-cancellation choices.
			rng := rand.New(rand.NewSource(int64(i) + 1))
			var mine struct {
				Session string `json:"session"`
			}
			sessionReq := map[string]any{
				"mode": combo.mode, "profile": combo.profile, "vectorized": combo.vectorized,
			}
			if combo.vectorized && parallelism > 0 {
				sessionReq["parallelism"] = parallelism
			}
			if err := cl.post("/session", sessionReq, &mine); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				for _, q := range bench.Corpus {
					cancelThis := rng.Float64() < cancelFrac
					out, err := cl.stream(mine.Session, q.SQL, cancelThis)
					if err != nil {
						errs <- fmt.Errorf("client %d (%+v) %s: %w", i, combo, q.Name, err)
						return
					}
					results[i].queries++
					results[i].rowsStreamed += int64(len(out.rows))
					if out.gotFirst {
						results[i].ttfrs = append(results[i].ttfrs, out.ttfr)
					}
					if out.cancelled {
						results[i].cancelled++
						continue // a partial result can't be verified
					}
					results[i].latencies = append(results[i].latencies, out.total)
					if canonical(out.rows) != baseline[q.Name] {
						results[i].mismatches++
						errs <- fmt.Errorf("client %d (%+v) %s: rows differ from serial baseline", i, combo, q.Name)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	failed := false
	for err := range errs {
		failed = true
		log.Printf("ERROR: %v", err)
	}

	var all, ttfrs []time.Duration
	var total, cancelled, rowsStreamed int64
	for _, r := range results {
		total += r.queries
		cancelled += r.cancelled
		rowsStreamed += r.rowsStreamed
		all = append(all, r.latencies...)
		ttfrs = append(ttfrs, r.ttfrs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(ttfrs, func(i, j int) bool { return ttfrs[i] < ttfrs[j] })
	pctOf := func(ds []time.Duration, p float64) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		return ds[int(p*float64(len(ds)-1))]
	}
	pct := func(p float64) time.Duration { return pctOf(all, p) }
	fmt.Printf("clients=%d rounds=%d queries=%d cancelled=%d rows-streamed=%d elapsed=%s\n",
		clients, rounds, total, cancelled, rowsStreamed, elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Printf("throughput: %.1f queries/sec\n", float64(total)/elapsed.Seconds())
	}
	fmt.Printf("latency (full stream): p50=%s p95=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("time-to-first-row: p50=%s p95=%s max=%s\n",
		pctOf(ttfrs, 0.50).Round(time.Microsecond), pctOf(ttfrs, 0.95).Round(time.Microsecond),
		pctOf(ttfrs, 1.0).Round(time.Microsecond))

	// Server-side cache effectiveness.
	resp, err := c.http.Get(base + "/stats")
	if err == nil {
		defer resp.Body.Close()
		var st server.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Printf("server plan cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d evictions, %d deduped prepares\n",
				st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRate(), st.Cache.Size, st.Cache.Evictions,
				st.PrepareDeduped)
			fmt.Printf("server cancelled queries: %d (errors: %d)\n", st.QueriesCancelled, st.QueryErrors)
			fmt.Printf("server queries by mode: %v\n", st.QueriesByMode)
			fmt.Printf("server parallel: pool=%d workers, %d parallel queries, %d morsels, %d worker launches, %d admission waits\n",
				st.Parallel.WorkersConfigured, st.Parallel.ParallelQueries,
				st.Parallel.MorselsExecuted, st.Parallel.WorkerLaunches, st.Parallel.AdmissionWaits)
		}
	}
	if failed {
		os.Exit(1)
	}
	if cancelled > 0 {
		fmt.Printf("all completed streams matched the serial baseline (%d cancelled mid-stream)\n", cancelled)
	} else {
		fmt.Println("all responses matched the serial baseline")
	}
	return nil
}
