// Command udfserverd is the concurrent query daemon: it serves the engine's
// HTTP/JSON API (sessions, /query, /exec, /explain, /stats) over a shared
// catalog+storage with the cross-session plan/rewrite cache.
//
// Server mode:
//
//	udfserverd -addr :8080 -dataset small -cache 256 -workers 32 -parallelism 4
//
// Load-client mode (-load) replays the shared differential corpus against a
// running daemon from N concurrent clients, checks every response against a
// serial baseline, and reports QPS, latency percentiles and the server-side
// plan-cache hit rate:
//
//	udfserverd -load -addr http://localhost:8080 -clients 8 -rounds 3
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (server) or base URL (load client)")
		dataset = flag.String("dataset", "small", "preloaded dataset: none|small|bench")
		cache   = flag.Int("cache", 256, "plan cache capacity (0 disables)")
		workers = flag.Int("workers", 32, "worker pool: max concurrently executing query-local workers")
		load    = flag.Bool("load", false, "run as load-generating client instead of server")
		clients = flag.Int("clients", 8, "load mode: concurrent client goroutines")
		rounds  = flag.Int("rounds", 3, "load mode: corpus replays per client")
		par     = flag.Int("parallelism", 0, "server: default intra-query degree for sessions; load: degree requested by vectorized client sessions (0 = serial)")
	)
	flag.Parse()

	if *load {
		if err := runLoad(*addr, *clients, *rounds, *par); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServer(*addr, *dataset, *cache, *workers, *par); err != nil {
		log.Fatal(err)
	}
}

func runServer(addr, dataset string, cacheSize, workers, parallelism int) error {
	boot, err := bootEngine(dataset)
	if err != nil {
		return err
	}
	svc := server.NewServiceFromEngine(boot, server.Options{
		CacheSize: cacheSize, MaxConcurrent: workers, DefaultParallelism: parallelism})
	log.Printf("udfserverd listening on %s (dataset=%s cache=%d workers=%d parallelism=%d)",
		addr, dataset, cacheSize, workers, parallelism)
	return http.ListenAndServe(addr, server.NewHandler(svc))
}

// bootEngine loads the requested dataset into a fresh catalog+store.
func bootEngine(dataset string) (*engine.Engine, error) {
	switch dataset {
	case "none":
		return engine.New(engine.SYS1, engine.ModeRewrite), nil
	case "small", "bench":
		cfg := bench.SmallConfig()
		if dataset == "bench" {
			cfg = bench.Config{Customers: 10_000, OrdersPerCustomer: 5, Parts: 20_000,
				LineitemsPerPart: 3, Categories: 200, Seed: 20140331}
		}
		e, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, cfg)
		if err != nil {
			return nil, err
		}
		if err := e.ExecScript(bench.ExtraUDFs); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want none|small|bench)", dataset)
	}
}

// --------------------------------------------------------------------------
// Load client
// --------------------------------------------------------------------------

type client struct {
	base string
	http *http.Client
}

func (c *client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("POST %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

type queryReply struct {
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
	CacheHit bool       `json:"cache_hit"`
}

// canonicalCell normalizes one rendered value: every numeric cell rounds to
// 9 significant digits, because parallel aggregation may re-associate float
// additions across worker partials. The renderer prints whole-valued floats
// without a decimal point (12345.0 becomes "12345"), so integers and floats
// are indistinguishable here and ALL in-range numerics must canonicalize
// the same way for both sides of a comparison to agree; integers beyond
// float53 precision stay exact strings (a float could not have produced
// them losslessly). String literals arrive quoted and are left alone.
func canonicalCell(s string) string {
	if s == "" || strings.HasPrefix(s, "'") {
		return s
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.Abs(f) >= 1<<53 {
		return s
	}
	return fmt.Sprintf("f:%.9g", f)
}

// canonical renders a row multiset order-insensitively for comparison.
func canonical(rows [][]string) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, c := range r {
			cells[j] = canonicalCell(c)
		}
		keys[i] = strings.Join(cells, "\x1f")
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}

// sessionCombo is one client's session settings.
type sessionCombo struct {
	mode       string
	profile    string
	vectorized bool
}

var combos = []sessionCombo{
	{"rewrite", "sys1", false},
	{"rewrite", "sys1", true},
	{"costbased", "sys1", false},
	{"rewrite", "sys2", true},
	{"iterative", "sys1", false},
	{"costbased", "sys2", true},
}

func runLoad(base string, clients, rounds, parallelism int) error {
	if !strings.HasPrefix(base, "http") {
		base = "http://localhost" + base // allow -addr :8080 shorthand
	}
	c := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}

	// Serial baseline on a dedicated iterative session (ground truth).
	var sess struct {
		Session string `json:"session"`
	}
	if err := c.post("/session", map[string]any{"mode": "iterative", "profile": "sys1"}, &sess); err != nil {
		return fmt.Errorf("creating baseline session (is the daemon running?): %w", err)
	}
	baseline := make(map[string]string, len(bench.Corpus))
	for _, q := range bench.Corpus {
		var reply queryReply
		if err := c.post("/query", map[string]any{"session": sess.Session, "sql": q.SQL}, &reply); err != nil {
			return fmt.Errorf("baseline %s: %w", q.Name, err)
		}
		baseline[q.Name] = canonical(reply.Rows)
	}
	log.Printf("baseline recorded: %d corpus queries", len(bench.Corpus))

	type stats struct {
		queries    int64
		mismatches int64
		latencies  []time.Duration
	}
	results := make([]stats, clients)
	start := time.Now()
	var wg sync.WaitGroup
	// Sized for the worst case (every query of every client mismatching):
	// a send must never block, or a result-corrupting server bug would
	// deadlock the load client instead of failing it.
	errs := make(chan error, clients*(1+rounds*len(bench.Corpus)))
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			combo := combos[i%len(combos)]
			cl := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}
			var mine struct {
				Session string `json:"session"`
			}
			sessionReq := map[string]any{
				"mode": combo.mode, "profile": combo.profile, "vectorized": combo.vectorized,
			}
			if combo.vectorized && parallelism > 0 {
				sessionReq["parallelism"] = parallelism
			}
			if err := cl.post("/session", sessionReq, &mine); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				for _, q := range bench.Corpus {
					t0 := time.Now()
					var reply queryReply
					if err := cl.post("/query", map[string]any{"session": mine.Session, "sql": q.SQL}, &reply); err != nil {
						errs <- fmt.Errorf("client %d (%+v) %s: %w", i, combo, q.Name, err)
						return
					}
					results[i].latencies = append(results[i].latencies, time.Since(t0))
					results[i].queries++
					if canonical(reply.Rows) != baseline[q.Name] {
						results[i].mismatches++
						errs <- fmt.Errorf("client %d (%+v) %s: rows differ from serial baseline", i, combo, q.Name)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	failed := false
	for err := range errs {
		failed = true
		log.Printf("ERROR: %v", err)
	}

	var all []time.Duration
	var total int64
	for _, r := range results {
		total += r.queries
		all = append(all, r.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return all[idx]
	}
	fmt.Printf("clients=%d rounds=%d queries=%d elapsed=%s\n", clients, rounds, total, elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Printf("throughput: %.1f queries/sec\n", float64(total)/elapsed.Seconds())
	}
	fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))

	// Server-side cache effectiveness.
	resp, err := c.http.Get(base + "/stats")
	if err == nil {
		defer resp.Body.Close()
		var st server.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Printf("server plan cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d evictions, %d deduped prepares\n",
				st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRate(), st.Cache.Size, st.Cache.Evictions,
				st.PrepareDeduped)
			fmt.Printf("server queries by mode: %v\n", st.QueriesByMode)
			fmt.Printf("server parallel: pool=%d workers, %d parallel queries, %d morsels, %d worker launches, %d admission waits\n",
				st.Parallel.WorkersConfigured, st.Parallel.ParallelQueries,
				st.Parallel.MorselsExecuted, st.Parallel.WorkerLaunches, st.Parallel.AdmissionWaits)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all responses matched the serial baseline")
	return nil
}
