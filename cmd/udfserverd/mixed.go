// Mixed read/write load mode (-mixed): N writer goroutines drive
// acknowledged INSERT batches while M reader goroutines replay corpus
// queries, all against one live daemon. The point is to measure write
// throughput under concurrency: with MVCC snapshot reads and group-commit
// fsync batching, write QPS should scale with the writer count instead of
// serializing behind a global lock (the CI smoke asserts exactly that by
// comparing a 1-writer and a 4-writer run).
package main

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/obs"
	"udfdecorr/internal/wire"
)

// leaderHint extracts the structured leader address from a follower's typed
// write rejection ("" when the error is anything else). Requires a v1
// client: v0 buries the address in the message text.
func leaderHint(err error) string {
	var rerr *wire.RemoteError
	if errors.As(err, &rerr) && rerr.Code == wire.CodeReadOnly {
		return rerr.LeaderHint
	}
	return ""
}

// runMixed drives the mixed load for dur and prints one machine-parseable
// summary line (the CI gate greps write_qps out of it).
func runMixed(base string, writers, readers, batchRows int, table string, dur time.Duration) error {
	if writers < 1 {
		return fmt.Errorf("-mixed needs at least one writer (got %d)", writers)
	}
	c := newHTTPClient(base)
	c.v1 = true
	base = c.base
	// Writers follow a read-only replica's structured leader hint: pointing
	// -mixed at a follower sends the writes to its leader automatically while
	// the readers keep hitting the replica they were aimed at.
	wbase := base
	setup, err := newIterativeSession(c)
	if err != nil {
		return err
	}
	ddl := fmt.Sprintf("create table %s (k int primary key, v varchar);", table)
	if err := c.post("/exec", map[string]any{"session": setup, "script": ddl}, nil); err != nil {
		hint := leaderHint(err)
		if hint == "" && !strings.Contains(err.Error(), "already exists") {
			return err
		}
		if hint != "" {
			slog.Info("follower hinted at its leader; writers re-pointed", "leader", hint)
			wbase = hint
			c = newHTTPClient(wbase)
			c.v1 = true
			if setup, err = newIterativeSession(c); err != nil {
				return err
			}
			if err := c.post("/exec", map[string]any{"session": setup, "script": ddl}, nil); err != nil &&
				!strings.Contains(err.Error(), "already exists") {
				return err
			}
		}
	}
	// Partition the key space per writer so batches never collide, and start
	// past anything already in the table (reruns against a durable server).
	var maxReply queryReply
	if err := c.post("/query", map[string]any{"session": setup,
		"sql": "select max(k) from " + table}, &maxReply); err != nil {
		return err
	}
	const stride = int64(1) << 40
	baseKey := int64(0)
	if len(maxReply.Rows) == 1 && len(maxReply.Rows[0]) == 1 && maxReply.Rows[0][0] != "NULL" {
		baseKey = stride // resumed runs jump a whole stride past every old key
	}

	var (
		ackedBatches atomic.Int64
		ackedRows    atomic.Int64
		readQueries  atomic.Int64
		readRows     atomic.Int64
	)
	// Per-statement latency distributions (histograms are safe for all
	// writers/readers to observe concurrently).
	writeLat, readLat := obs.NewHistogram(), obs.NewHistogram()
	errs := make(chan error, writers+readers)
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := newHTTPClient(wbase)
			cl.v1 = true
			session, err := newIterativeSession(cl)
			if err != nil {
				errs <- fmt.Errorf("writer %d: %w", w, err)
				return
			}
			followed := false
			next := baseKey + int64(w+1)*stride
			for b := 0; time.Now().Before(deadline); b++ {
				var script strings.Builder
				for i := 0; i < batchRows; i++ {
					fmt.Fprintf(&script, "insert into %s values (%d, 'w%d-b%d-r%d');\n",
						table, next+int64(i), w, b, i)
				}
				t0 := time.Now()
				err := cl.post("/exec", map[string]any{
					"session": session, "script": script.String()}, nil)
				if err != nil {
					// Follow the leader hint once (e.g. the node was demoted to
					// a replica mid-run); a second rejection is a real failure.
					if hint := leaderHint(err); hint != "" && !followed {
						followed = true
						cl = newHTTPClient(hint)
						cl.v1 = true
						if session, err = newIterativeSession(cl); err == nil {
							err = cl.post("/exec", map[string]any{
								"session": session, "script": script.String()}, nil)
						}
					}
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d batch %d: %w", w, b, err)
					return
				}
				writeLat.Observe(time.Since(t0))
				next += int64(batchRows)
				ackedBatches.Add(1)
				ackedRows.Add(int64(batchRows))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl := newHTTPClient(base)
			session, err := newIterativeSession(cl)
			if err != nil {
				errs <- fmt.Errorf("reader %d: %w", r, err)
				return
			}
			for q := 0; time.Now().Before(deadline); q++ {
				// Alternate a corpus query with a scan of the write table, so
				// readers overlap the rows being appended (snapshot reads must
				// keep these consistent and stall-free).
				sql := bench.Corpus[q%len(bench.Corpus)].SQL
				if q%2 == 1 {
					sql = "select count(*) from " + table
				}
				var reply queryReply
				t0 := time.Now()
				if err := cl.post("/query", map[string]any{
					"session": session, "sql": sql}, &reply); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				readLat.Observe(time.Since(t0))
				readQueries.Add(1)
				readRows.Add(int64(reply.RowCount))
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start) // dur plus the overshoot of the last in-flight statements
	close(errs)
	failed := false
	for err := range errs {
		failed = true
		slog.Error("mixed load", "err", err)
	}
	if failed {
		return fmt.Errorf("mixed load failed")
	}
	secs := elapsed.Seconds()
	fmt.Printf("mixed: writers=%d readers=%d duration=%s batch_rows=%d\n",
		writers, readers, elapsed.Round(time.Millisecond), batchRows)
	fmt.Printf("mixed: write_batches=%d write_rows=%d write_qps=%.2f rows_per_sec=%.1f\n",
		ackedBatches.Load(), ackedRows.Load(),
		float64(ackedBatches.Load())/secs, float64(ackedRows.Load())/secs)
	fmt.Printf("mixed: write_latency p50=%s p95=%s p99=%s\n",
		writeLat.Quantile(0.50).Round(time.Microsecond), writeLat.Quantile(0.95).Round(time.Microsecond),
		writeLat.Quantile(0.99).Round(time.Microsecond))
	fmt.Printf("mixed: read_queries=%d read_rows=%d read_qps=%.2f\n",
		readQueries.Load(), readRows.Load(), float64(readQueries.Load())/secs)
	if readQueries.Load() > 0 {
		fmt.Printf("mixed: read_latency p50=%s p95=%s p99=%s\n",
			readLat.Quantile(0.50).Round(time.Microsecond), readLat.Quantile(0.95).Round(time.Microsecond),
			readLat.Quantile(0.99).Round(time.Microsecond))
	}
	return nil
}
