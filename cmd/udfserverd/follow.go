// Follower mode: udfserverd -follow <leader-url> runs as a read-only
// replica. It bootstraps from the leader's latest checkpoint, tails the
// leader's WAL stream applying records into its own in-memory engine, and
// serves the normal query API with writes rejected. Promotion — POST
// /repl/promote or SIGUSR1 — stops the tail, optionally drains the dead
// leader's remaining fsynced WAL straight from its data directory (the
// zero-acked-row-loss path), and flips the node to leader.
//
// A promoted node is volatile: it has no WAL of its own, so it serves reads
// and accepts writes but does not survive a restart. Re-seed a durable
// leader from it (or re-point followers) as the follow-up operation.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"udfdecorr/internal/repl"
	"udfdecorr/internal/server"
)

type followerConfig struct {
	addr        string
	leader      string
	catchupDir  string
	cacheSize   int
	workers     int
	parallelism int
	drain       time.Duration
	slowQuery   time.Duration
}

func runFollower(cfg followerConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The DDL gate closure is handed to the follower before the service
	// exists: during bootstrap (nothing serves yet) it applies directly, and
	// once the service is up it takes the exclusive DDL gate + cache purge.
	var svcPtr atomic.Pointer[server.Service]
	gate := func(fn func() error) error {
		if s := svcPtr.Load(); s != nil {
			return s.ApplyExclusive(fn)
		}
		return fn()
	}

	f := repl.NewFollower(cfg.leader, gate)
	if err := bootstrapWithRetry(ctx, f, cfg.leader); err != nil {
		return err
	}
	st := f.Status()
	slog.Info("follower bootstrapped", "leader", cfg.leader,
		"records", st.AppliedRecords, "segment", st.Segment)

	svc := server.NewService(f.Catalog(), f.Store(), server.Options{
		CacheSize: cfg.cacheSize, MaxConcurrent: cfg.workers,
		DefaultParallelism: cfg.parallelism,
		SlowQueryThreshold: cfg.slowQuery, Logger: slog.Default()})
	svc.SetFollower(cfg.leader, f.Status)
	svcPtr.Store(svc)

	tailCtx, stopTail := context.WithCancel(ctx)
	defer stopTail()
	tailDone := make(chan error, 1)
	go func() { tailDone <- f.Run(tailCtx) }()

	// promote runs at most once: stop the tail, wait for it (no applies may
	// race the role flip), drain the dead leader's directory when given one,
	// then accept writes. A failed catch-up leaves the node a follower with
	// its tail stopped — promoting anyway could silently drop acked rows.
	var promoteOnce sync.Once
	promote := func(dir string) (recovered int64, err error) {
		promoteOnce.Do(func() {
			stopTail()
			<-tailDone
			if dir != "" {
				recovered, err = f.CatchupFromDir(dir)
				if err != nil {
					slog.Error("promotion aborted: catch-up failed", "dir", dir, "err", err)
					return
				}
				slog.Info("drained dead leader's WAL tail", "dir", dir, "records", recovered)
			}
			svc.Promote()
			slog.Info("promoted to leader", "catchup_records", recovered,
				"applied_records", f.Status().AppliedRecords)
		})
		if err == nil && svc.Role() != server.RoleLeader {
			err = fmt.Errorf("promotion already attempted and failed; restart the follower")
		}
		return recovered, err
	}

	mux := http.NewServeMux()
	mux.Handle("/", server.NewHandler(svc))
	mux.HandleFunc("/repl/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			jsonReply(w, http.StatusMethodNotAllowed, map[string]any{"error": "use POST"})
			return
		}
		var req struct {
			CatchupDir string `json:"catchup_dir"`
		}
		if r.Body != nil {
			_ = json.NewDecoder(r.Body).Decode(&req) // empty body = no catch-up override
		}
		dir := req.CatchupDir
		if dir == "" {
			dir = cfg.catchupDir
		}
		recovered, err := promote(dir)
		if err != nil {
			jsonReply(w, http.StatusConflict, map[string]any{"error": err.Error()})
			return
		}
		jsonReply(w, http.StatusOK, map[string]any{
			"role":            string(svc.Role()),
			"catchup_records": recovered,
			"applied_records": f.Status().AppliedRecords,
			"pending_txns":    f.Status().PendingTxns,
		})
	})

	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			if _, err := promote(cfg.catchupDir); err != nil {
				slog.Error("SIGUSR1 promotion failed", "err", err)
			}
		}
	}()

	slog.Info("udfserverd follower listening", "addr", cfg.addr, "leader", cfg.leader,
		"cache", cfg.cacheSize, "workers", cfg.workers)
	srv := &http.Server{Addr: cfg.addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		slog.Info("shutdown signal; draining", "sessions", svc.SessionCount(), "deadline", cfg.drain)
		shctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			slog.Warn("drain deadline exceeded, force-closing", "err", err)
			return srv.Close()
		}
		slog.Info("drained cleanly")
		return nil
	}
}

// bootstrapWithRetry fetches the leader's snapshot, retrying while the
// leader is still coming up (a follower is typically started right after
// its leader; racing the leader's bind should not be fatal).
func bootstrapWithRetry(ctx context.Context, f *repl.Follower, leader string) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := f.Bootstrap(ctx)
		if err == nil {
			return nil
		}
		if f.Status().AppliedRecords > 0 {
			// The snapshot partially applied: retrying would duplicate rows.
			return fmt.Errorf("bootstrapping from %s: %w (partial apply; not retryable)", leader, err)
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return fmt.Errorf("bootstrapping from %s: %w", leader, err)
		}
		slog.Warn("bootstrap failed; retrying", "leader", leader, "err", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
}

func jsonReply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
