// Command udfrewrite is the query rewrite tool of Figure 9: it accepts a
// database schema, UDF definitions and an SQL query (all in one script, or
// split across files), decorrelates the UDF invocations, and prints the
// rewritten SQL query along with any auxiliary aggregate function
// definitions it synthesized.
//
// Usage:
//
//	udfrewrite [-explain] [-dot] file.sql [file2.sql ...]
//	udfrewrite -e "create table t (...); create function f ...; select ..."
//
// When the rules cannot remove every Apply operator, the tool reports the
// query as not transformable and leaves it unchanged (the same contract as
// the paper's implementation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/cfg"
	"udfdecorr/internal/core"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/sqlgen"
)

func main() {
	explain := flag.Bool("explain", false, "print the rule trace and algebra trees")
	dot := flag.Bool("dot", false, "print each UDF's control-flow graph in Graphviz format")
	inline := flag.String("e", "", "inline script instead of files")
	flag.Parse()

	src := *inline
	if src == "" {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: udfrewrite [-explain] [-dot] file.sql ...")
			os.Exit(2)
		}
		var parts []string
		for _, f := range flag.Args() {
			data, err := os.ReadFile(f)
			if err != nil {
				fatal(err)
			}
			parts = append(parts, string(data))
		}
		src = strings.Join(parts, "\n")
	}

	script, err := parser.ParseScript(src)
	if err != nil {
		fatal(err)
	}
	cat := catalog.New()
	for _, t := range script.Tables {
		if _, err := cat.AddTableFromAST(t); err != nil {
			fatal(err)
		}
	}
	for _, f := range script.Functions {
		if _, err := cat.AddFunction(f); err != nil {
			fatal(err)
		}
		if *dot {
			fmt.Printf("-- CFG of %s\n%s\n", f.Name, cfg.Build(f.Body).Dot())
		}
	}
	if len(script.Queries) == 0 {
		fatal(fmt.Errorf("no query in input"))
	}

	alg := core.NewAlgebrizer(cat)
	d := core.NewDecorrelator(cat)
	for qi, q := range script.Queries {
		if qi > 0 {
			fmt.Println()
		}
		rel, err := alg.Query(q)
		if err != nil {
			fatal(err)
		}
		res, err := d.Rewrite(rel)
		if err != nil {
			fatal(err)
		}
		if *explain {
			fmt.Println("-- rule trace:")
			for _, r := range res.Trace {
				fmt.Println("--   " + r)
			}
			fmt.Println("-- rewritten algebra:")
			for _, line := range strings.Split(strings.TrimRight(algebra.Print(res.Rel), "\n"), "\n") {
				fmt.Println("--   " + line)
			}
		}
		if !res.Decorrelated {
			fmt.Println("-- query could not be fully decorrelated; left unchanged:")
			fmt.Println(q.SQL() + ";")
			continue
		}
		for _, agg := range res.NewAggs {
			fmt.Println("-- auxiliary aggregate (install before running the query):")
			fmt.Println(agg.SQL())
		}
		sql, err := sqlgen.Generate(res.Rel)
		if err != nil {
			fatal(err)
		}
		fmt.Println("-- rewritten query (inlined: " + strings.Join(res.InlinedUDFs, ", ") + "):")
		fmt.Println(sql + ";")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udfrewrite:", err)
	os.Exit(1)
}
