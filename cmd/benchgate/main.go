// Command benchgate is the benchmark-regression gate: it parses `go test
// -bench -benchmem` output, compares it against a committed baseline, and
// fails when a benchmark regresses beyond tolerance. CI runs it after the
// pinned benchmark step and uploads the emitted BENCH_current.json as an
// artifact, giving the repo a benchmark trajectory instead of an empty
// history.
//
// Three kinds of gate, because CI runners vary wildly in absolute speed:
//
//   - Absolute time: each benchmark's best ns/op must stay within
//     -tolerance × the committed baseline ns/op. A generous factor (default
//     4×) tolerates runner noise while still catching order-of-magnitude
//     regressions.
//   - Ratio: pairs of benchmarks measured in the same run (vectorized vs
//     row executor, plan-cache hit vs cold prepare) must preserve a minimum
//     speedup. Ratios divide out the runner's speed, so they gate tightly.
//   - Allocation ceiling: allocs/op is machine-independent, so ceilings
//     gate absolutely with no tolerance factor. This is what keeps the
//     zero-copy scan path honest: a change that silently reintroduces
//     per-batch row pivoting fails the ceiling even on a fast runner.
//
// Usage:
//
//	go test -run XXX -bench ... -benchmem -count 3 | tee bench.txt
//	benchgate -baseline BENCH_baseline.json -in bench.txt -out BENCH_current.json
//	benchgate -init -in bench.txt -out BENCH_baseline.json   # (re)create baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// baselineFile is the committed gate definition plus the reference numbers.
type baselineFile struct {
	// NsPerOp maps benchmark name (without -N GOMAXPROCS suffix) to the
	// reference best-of-count ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp records the reference allocation counts (informational;
	// the binding gate is AllocCeilings).
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// AllocCeilings maps benchmark name to the maximum admissible allocs/op.
	// Allocation counts do not depend on runner speed, so these gate
	// absolutely.
	AllocCeilings map[string]float64 `json:"alloc_ceilings,omitempty"`
	// Ratios are runner-speed-independent invariants.
	Ratios []ratioGate `json:"ratios"`
}

type ratioGate struct {
	// Name labels the ratio in reports, e.g. "scanfilter_vectorized_speedup".
	Name string `json:"name"`
	// Slow / Fast are benchmark names; the gate asserts slow/fast >= Min.
	Slow string  `json:"slow"`
	Fast string  `json:"fast"`
	Min  float64 `json:"min"`
}

// currentFile is the artifact CI uploads per run.
type currentFile struct {
	NsPerOp     map[string]float64 `json:"ns_per_op"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
	BytesPerOp  map[string]float64 `json:"bytes_per_op"`
	Ratios      map[string]float64 `json:"ratios"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Go          string             `json:"go"`
}

// benchResult is the best observation for one benchmark across -count runs.
type benchResult struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// parseBench extracts the best (minimum) ns/op — and, with -benchmem, the
// minimum B/op and allocs/op — per benchmark from -count runs.
func parseBench(r io.Reader) (map[string]*benchResult, error) {
	best := map[string]*benchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := best[m[1]]
		if b == nil {
			b = &benchResult{ns: ns}
			best[m[1]] = b
		} else if ns < b.ns {
			b.ns = ns
		}
		if m[3] != "" {
			bytes, errB := strconv.ParseFloat(m[3], 64)
			allocs, errA := strconv.ParseFloat(m[4], 64)
			if errB == nil && errA == nil {
				if !b.hasMem || bytes < b.bytes {
					b.bytes = bytes
				}
				if !b.hasMem || allocs < b.allocs {
					b.allocs = allocs
				}
				b.hasMem = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	return best, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
		in           = flag.String("in", "", "benchmark output file (default stdin)")
		out          = flag.String("out", "BENCH_current.json", "where to write this run's numbers")
		tolerance    = flag.Float64("tolerance", 4.0, "max allowed current/baseline ns/op factor")
		initBaseline = flag.Bool("init", false, "write a fresh baseline from the input instead of gating")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	current, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	nsOf := map[string]float64{}
	allocsOf := map[string]float64{}
	bytesOf := map[string]float64{}
	for name, b := range current {
		nsOf[name] = b.ns
		if b.hasMem {
			allocsOf[name] = b.allocs
			bytesOf[name] = b.bytes
		}
	}

	if *initBaseline {
		base := baselineFile{
			NsPerOp:       nsOf,
			AllocsPerOp:   allocsOf,
			AllocCeilings: defaultAllocCeilings(allocsOf),
			Ratios:        defaultRatios,
		}
		if err := writeJSON(*out, base); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baseline with %d benchmarks written to %s\n", len(current), *out)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}

	report := currentFile{
		NsPerOp:     nsOf,
		AllocsPerOp: allocsOf,
		BytesPerOp:  bytesOf,
		Ratios:      map[string]float64{},
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Go:          runtime.Version(),
	}
	var failures []string

	var names []string
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.NsPerOp[name]
		got, ok := nsOf[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run", name))
			continue
		}
		factor := got / want
		status := "ok"
		if factor > *tolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.1fx tolerance)",
				name, got, want, factor, *tolerance))
		}
		fmt.Printf("benchgate: %-50s %12.0f ns/op  baseline %12.0f  (%.2fx) %s\n",
			name, got, want, factor, status)
	}

	var ceilNames []string
	for name := range base.AllocCeilings {
		ceilNames = append(ceilNames, name)
	}
	sort.Strings(ceilNames)
	for _, name := range ceilNames {
		ceiling := base.AllocCeilings[name]
		got, ok := allocsOf[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("allocs %s: missing from this run (was -benchmem passed?)", name))
			continue
		}
		status := "ok"
		if got > ceiling {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("allocs %s: %.0f allocs/op > ceiling %.0f",
				name, got, ceiling))
		}
		fmt.Printf("benchgate: allocs %-43s %12.0f allocs/op  ceiling %8.0f %s\n",
			name, got, ceiling, status)
	}

	for _, r := range base.Ratios {
		slow, okS := nsOf[r.Slow]
		fast, okF := nsOf[r.Fast]
		if !okS || !okF {
			failures = append(failures, fmt.Sprintf("ratio %s: missing %s or %s", r.Name, r.Slow, r.Fast))
			continue
		}
		ratio := slow / fast
		report.Ratios[r.Name] = ratio
		status := "ok"
		if ratio < r.Min {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("ratio %s: %s/%s = %.2fx < required %.2fx",
				r.Name, r.Slow, r.Fast, ratio, r.Min))
		}
		fmt.Printf("benchgate: ratio %-44s %6.2fx (min %.2fx) %s\n", r.Name, ratio, r.Min, status)
	}

	if err := writeJSON(*out, report); err != nil {
		fatal(err)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks, %d alloc ceilings and %d ratios within bounds; wrote %s\n",
		len(base.NsPerOp), len(base.AllocCeilings), len(base.Ratios), *out)
}

// defaultRatios are the runner-independent invariants -init seeds: the
// vectorized executor's win on the scan/filter pair, the columnar zero-copy
// scan's tighter floor on the same pair, and the plan cache's win over cold
// prepares. Floors sit well under the locally measured speedups so ordinary
// noise passes but a real architectural regression — the vectorized path
// losing its edge, a scan that starts pivoting rows again, the cache
// stopping to hit — fails.
var defaultRatios = []ratioGate{
	{Name: "scanfilter_vectorized_speedup",
		Slow: "BenchmarkScanFilterProject_Row", Fast: "BenchmarkScanFilterProject_Vectorized", Min: 1.4},
	{Name: "scanfilter_columnar_speedup",
		Slow: "BenchmarkScanFilterProject_Row", Fast: "BenchmarkScanFilterProject_Vectorized", Min: 2.5},
	{Name: "plancache_hit_speedup",
		Slow: "BenchmarkPlanCache/Cold", Fast: "BenchmarkPlanCache/Warm", Min: 2.0},
}

// defaultAllocCeilings seeds ceilings at 3× the measured allocs/op for the
// scan/filter pair: loose enough for incidental churn, tight enough that
// reintroducing a per-row or per-batch materialization (thousands of
// allocations) fails.
func defaultAllocCeilings(allocs map[string]float64) map[string]float64 {
	ceil := map[string]float64{}
	for _, name := range []string{"BenchmarkScanFilterProject_Row", "BenchmarkScanFilterProject_Vectorized"} {
		if a, ok := allocs[name]; ok {
			ceil[name] = float64(int64(a*3) + 16)
		}
	}
	return ceil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
