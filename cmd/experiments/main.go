// Command experiments regenerates the paper's evaluation: Figures 10, 11
// and 12 of "Decorrelation of User Defined Function Invocations in Queries"
// (ICDE 2014), on the SYS1 and SYS2 engine profiles.
//
// Usage:
//
//	experiments [-exp 1|2|3|all] [-sys 1|2|all] [-scale small|default]
//	            [-customers N] [-parts N] [-categories N] [-vectorized]
//	            [-parallelism N]
//
// The -parallelbench mode instead measures serial vs parallel vectorized
// QPS on a scan-heavy grouped aggregation and writes the JSON report (the
// bench-trajectory artifact) to -out:
//
//	experiments -parallelbench -parallelism 4 -out BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: 1, 2, 3 or all")
	sysFlag := flag.String("sys", "1", "engine profile: 1, 2 or all")
	scale := flag.String("scale", "default", "dataset scale: small or default")
	customers := flag.Int("customers", 0, "override customer count")
	parts := flag.Int("parts", 0, "override part count")
	categories := flag.Int("categories", 0, "override category count")
	vectorized := flag.Bool("vectorized", false, "use the batch (vectorized) executor")
	parallelism := flag.Int("parallelism", 0, "intra-query worker degree for vectorized plans (0 = serial)")
	parallelBench := flag.Bool("parallelbench", false, "run the serial-vs-parallel grouped-aggregation benchmark and exit")
	out := flag.String("out", "", "parallelbench: write the JSON report to this file (default stdout)")
	flag.Parse()

	if *parallelBench {
		if err := runParallelBench(*parallelism, *out); err != nil {
			fmt.Fprintln(os.Stderr, "parallelbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *scale == "small" {
		cfg = bench.SmallConfig()
	}
	if *customers > 0 {
		cfg.Customers = *customers
	}
	if *parts > 0 {
		cfg.Parts = *parts
	}
	if *categories > 0 {
		cfg.Categories = *categories
	}

	var profiles []engine.Profile
	switch *sysFlag {
	case "1":
		profiles = []engine.Profile{engine.SYS1}
	case "2":
		profiles = []engine.Profile{engine.SYS2}
	case "all":
		profiles = []engine.Profile{engine.SYS1, engine.SYS2}
	default:
		fmt.Fprintf(os.Stderr, "unknown -sys %q\n", *sysFlag)
		os.Exit(2)
	}

	for i := range profiles {
		profiles[i].Vectorized = *vectorized
		profiles[i].Parallelism = *parallelism
	}

	for _, exp := range bench.Experiments(cfg) {
		if *expFlag != "all" && exp.ID != "exp"+*expFlag {
			continue
		}
		for _, profile := range profiles {
			points, err := bench.Run(exp, profile, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s on %s: %v\n", exp.ID, profile.Name, err)
				os.Exit(1)
			}
			bench.Report(os.Stdout, exp, profile, points)
			fmt.Println()
		}
	}
}

// runParallelBench measures serial vs parallel vectorized QPS on the
// scan-heavy grouped aggregation and writes the JSON report.
func runParallelBench(degree int, outPath string) error {
	res, err := bench.RunParallelBench(bench.ParallelBenchConfig(), degree)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("parallel bench: %s (%d rows, %d groups): serial %.2fms/q, parallel(%d) %.2fms/q, speedup %.2fx (GOMAXPROCS=%d)\n",
		outPath, res.DatasetRows, res.Groups, res.SerialMSPerQ, res.Parallelism,
		res.ParallelMSPer, res.Speedup, res.GOMAXPROCS)
	return nil
}
