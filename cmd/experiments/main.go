// Command experiments regenerates the paper's evaluation: Figures 10, 11
// and 12 of "Decorrelation of User Defined Function Invocations in Queries"
// (ICDE 2014), on the SYS1 and SYS2 engine profiles.
//
// Usage:
//
//	experiments [-exp 1|2|3|all] [-sys 1|2|all] [-scale small|default]
//	            [-customers N] [-parts N] [-categories N] [-vectorized]
package main

import (
	"flag"
	"fmt"
	"os"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: 1, 2, 3 or all")
	sysFlag := flag.String("sys", "1", "engine profile: 1, 2 or all")
	scale := flag.String("scale", "default", "dataset scale: small or default")
	customers := flag.Int("customers", 0, "override customer count")
	parts := flag.Int("parts", 0, "override part count")
	categories := flag.Int("categories", 0, "override category count")
	vectorized := flag.Bool("vectorized", false, "use the batch (vectorized) executor")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *scale == "small" {
		cfg = bench.SmallConfig()
	}
	if *customers > 0 {
		cfg.Customers = *customers
	}
	if *parts > 0 {
		cfg.Parts = *parts
	}
	if *categories > 0 {
		cfg.Categories = *categories
	}

	var profiles []engine.Profile
	switch *sysFlag {
	case "1":
		profiles = []engine.Profile{engine.SYS1}
	case "2":
		profiles = []engine.Profile{engine.SYS2}
	case "all":
		profiles = []engine.Profile{engine.SYS1, engine.SYS2}
	default:
		fmt.Fprintf(os.Stderr, "unknown -sys %q\n", *sysFlag)
		os.Exit(2)
	}

	for i := range profiles {
		profiles[i].Vectorized = *vectorized
	}

	for _, exp := range bench.Experiments(cfg) {
		if *expFlag != "all" && exp.ID != "exp"+*expFlag {
			continue
		}
		for _, profile := range profiles {
			points, err := bench.Run(exp, profile, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s on %s: %v\n", exp.ID, profile.Name, err)
				os.Exit(1)
			}
			bench.Report(os.Stdout, exp, profile, points)
			fmt.Println()
		}
	}
}
