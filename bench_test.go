// Package udfdecorr's root benchmarks regenerate the paper's evaluation as
// testing.B benchmarks: one benchmark pair (Original vs Rewritten) per
// figure, on both engine profiles, plus ablation benchmarks for the
// physical-operator choices the cost model makes.
//
//	go test -bench=. -benchmem
package udfdecorr_test

import (
	"fmt"
	"sync"
	"testing"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

// benchCfg is a mid-scale dataset: large enough that the iterative and
// set-oriented regimes separate, small enough for a benchmark run.
var benchCfg = bench.Config{
	Customers:         10_000,
	OrdersPerCustomer: 5,
	Parts:             20_000,
	LineitemsPerPart:  3,
	Categories:        200,
	Seed:              20140331,
}

// engines are built once per profile/mode pair and reused across benchmarks.
var engineCache = map[string]*engine.Engine{}

func getEngine(b *testing.B, profile engine.Profile, mode engine.Mode) *engine.Engine {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%v/%d", profile.Name, mode, profile.Vectorized, profile.Parallelism)
	if e, ok := engineCache[key]; ok {
		return e
	}
	e, err := bench.NewEngine(profile, mode, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	engineCache[key] = e
	return e
}

func runQuery(b *testing.B, e *engine.Engine, q string) {
	b.Helper()
	// Warm up (build indexes, statistics, cached plans).
	if _, err := e.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------------------------
// Figure 10 (Experiment 1): straight-line UDF with two scalar queries.
// --------------------------------------------------------------------------

func benchExp1(b *testing.B, mode engine.Mode, n int) {
	e := getEngine(b, engine.SYS1, mode)
	runQuery(b, e, fmt.Sprintf(
		"select top %d orderkey, discount(totalprice, custkey) from orders", n))
}

func BenchmarkExperiment1_Original(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchExp1(b, engine.ModeIterative, n) })
	}
}

func BenchmarkExperiment1_Rewritten(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchExp1(b, engine.ModeRewrite, n) })
	}
}

// --------------------------------------------------------------------------
// Figure 11 (Experiment 2): Example 1's service_level UDF.
// --------------------------------------------------------------------------

func benchExp2(b *testing.B, mode engine.Mode, n int) {
	e := getEngine(b, engine.SYS1, mode)
	runQuery(b, e, fmt.Sprintf(
		"select custkey, service_level(custkey) from customer where custkey <= %d", n))
}

func BenchmarkExperiment2_Original(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchExp2(b, engine.ModeIterative, n) })
	}
}

func BenchmarkExperiment2_Rewritten(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchExp2(b, engine.ModeRewrite, n) })
	}
}

// SYS2: the profile without embedded-plan caching (larger iterative gap).
func BenchmarkExperiment2_SYS2_Original(b *testing.B) {
	e := getEngine(b, engine.SYS2, engine.ModeIterative)
	runQuery(b, e, "select custkey, service_level(custkey) from customer where custkey <= 1000")
}

func BenchmarkExperiment2_SYS2_Rewritten(b *testing.B) {
	e := getEngine(b, engine.SYS2, engine.ModeRewrite)
	runQuery(b, e, "select custkey, service_level(custkey) from customer where custkey <= 1000")
}

// --------------------------------------------------------------------------
// Figure 12 (Experiment 3): cursor-loop UDF with an auxiliary aggregate.
// --------------------------------------------------------------------------

func benchExp3(b *testing.B, mode engine.Mode, n int) {
	e := getEngine(b, engine.SYS1, mode)
	runQuery(b, e, fmt.Sprintf(
		"select categorykey, partcount(categorykey) from category where categorykey <= %d", n))
}

func BenchmarkExperiment3_Original(b *testing.B) {
	for _, n := range []int{5, 50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchExp3(b, engine.ModeIterative, n) })
	}
}

func BenchmarkExperiment3_Rewritten(b *testing.B) {
	for _, n := range []int{5, 50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchExp3(b, engine.ModeRewrite, n) })
	}
}

// --------------------------------------------------------------------------
// Ablations: physical operator choices behind the figures.
// --------------------------------------------------------------------------

// The Example 5 workload (aux-aggregate join) rounds out the loop coverage.
func BenchmarkExample5TotalLoss_Original(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeIterative)
	runQuery(b, e, "select top 500 partkey, totalloss(partkey) from partsupp")
}

func BenchmarkExample5TotalLoss_Rewritten(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeRewrite)
	runQuery(b, e, "select top 500 partkey, totalloss(partkey) from partsupp")
}

// Plain-SQL subquery decorrelation (Section II's min-cost supplier).
func BenchmarkSubqueryDecorrelation_Original(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeIterative)
	runQuery(b, e, `select partsuppkey from partsupp p1
	  where supplycost = (select min(supplycost) from partsupp p2
	                      where p2.partkey = p1.partkey)`)
}

func BenchmarkSubqueryDecorrelation_Rewritten(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeRewrite)
	runQuery(b, e, `select partsuppkey from partsupp p1
	  where supplycost = (select min(supplycost) from partsupp p2
	                      where p2.partkey = p1.partkey)`)
}

// Rewrite-pipeline cost itself: how long decorrelating Example 1 takes.
func BenchmarkRewritePipeline(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeRewrite)
	q := "select custkey, service_level(custkey) from customer"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.RewriteSQL(q)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Decorrelated {
			b.Fatal("not decorrelated")
		}
	}
}

// --------------------------------------------------------------------------
// Executor ablation: row vs. vectorized batch pipeline on scan/filter-heavy
// queries (no UDFs), isolating the executor's per-row dispatch overhead.
// --------------------------------------------------------------------------

// scanFilterQuery streams every order through an arithmetic-heavy filter and
// projection: the shape that separates tuple-at-a-time interpretation (an
// interface call plus several closure invocations per row) from the batch
// pipeline (tight per-column loops).
const scanFilterQuery = `select orderkey, totalprice * 0.97 - 250.0 from orders
  where totalprice * 1.21 + 500.0 > 60500.0 and totalprice * 1.21 + 500.0 < 90750.0`

func benchScanFilter(b *testing.B, vectorized bool) {
	profile := engine.SYS1
	profile.Vectorized = vectorized
	e := getEngine(b, profile, engine.ModeIterative)
	runQuery(b, e, scanFilterQuery)
}

func BenchmarkScanFilterProject_Row(b *testing.B)        { benchScanFilter(b, false) }
func BenchmarkScanFilterProject_Vectorized(b *testing.B) { benchScanFilter(b, true) }

// The same ablation over a hash join: orders joined to their customers.
const joinQuery = `select o.orderkey, c.name from orders o
  join customer c on c.custkey = o.custkey where o.totalprice > 100000`

func benchJoin(b *testing.B, vectorized bool) {
	profile := engine.SYS1
	profile.Vectorized = vectorized
	e := getEngine(b, profile, engine.ModeIterative)
	runQuery(b, e, joinQuery)
}

func BenchmarkHashJoin_Row(b *testing.B)        { benchJoin(b, false) }
func BenchmarkHashJoin_Vectorized(b *testing.B) { benchJoin(b, true) }

// Decorrelated Experiment 2 on both executors: the rewritten plan is itself
// scan/aggregation-heavy, so the batch path compounds the paper's speedup.
func BenchmarkExperiment2Rewritten_VectorizedExecutor(b *testing.B) {
	profile := engine.SYS1
	profile.Vectorized = true
	e := getEngine(b, profile, engine.ModeRewrite)
	runQuery(b, e, "select custkey, service_level(custkey) from customer where custkey <= 10000")
}

// Cost-based mode (the integration the paper argues for): small inputs run
// iteratively, large ones through the rewrite.
func BenchmarkCostBasedSmall(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeCostBased)
	runQuery(b, e, "select custkey, service_level(custkey) from customer where custkey <= 10")
}

func BenchmarkCostBasedLarge(b *testing.B) {
	e := getEngine(b, engine.SYS1, engine.ModeCostBased)
	runQuery(b, e, "select custkey, service_level(custkey) from customer where custkey <= 10000")
}

// --------------------------------------------------------------------------
// Query service throughput: concurrent sessions over one shared service.
// --------------------------------------------------------------------------

var (
	benchSvcOnce sync.Once
	benchSvc     *server.Service
	benchSvcErr  error
)

// serverService builds (once) a query service over the small bench dataset
// with the shared corpus UDFs installed.
func serverService(b *testing.B) *server.Service {
	benchSvcOnce.Do(func() {
		boot, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, bench.SmallConfig())
		if err != nil {
			benchSvcErr = err
			return
		}
		if err := boot.ExecScript(bench.ExtraUDFs); err != nil {
			benchSvcErr = err
			return
		}
		benchSvc = server.NewServiceFromEngine(boot, server.DefaultOptions())
	})
	if benchSvcErr != nil {
		b.Fatal(benchSvcErr)
	}
	return benchSvc
}

// BenchmarkServerParallel measures end-to-end service throughput (plan-cache
// lookup + concurrent execution) with one session per worker goroutine, all
// replaying the shared differential corpus against cached plans. This is the
// throughput-scaling axis (clients × executor × mode) the daemon serves.
func BenchmarkServerParallel(b *testing.B) {
	svc := serverService(b)
	profile := engine.SYS1
	profile.Vectorized = true
	// Warm the cache so the steady state measures the repeat-query path.
	warm := svc.CreateSession(profile, engine.ModeRewrite)
	for _, q := range bench.Corpus {
		if _, err := svc.Query(warm, q.SQL); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := svc.CreateSession(profile, engine.ModeRewrite)
		i := 0
		for pb.Next() {
			q := bench.Corpus[i%len(bench.Corpus)]
			i++
			if _, err := svc.Query(sess, q.SQL); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --------------------------------------------------------------------------
// Intra-query parallelism: scan-heavy grouped aggregation, serial vs
// morsel-driven parallel vectorized execution (the `experiments
// -parallelbench` JSON report measures the same pair standalone).
// --------------------------------------------------------------------------

func benchParallelGroupBy(b *testing.B, degree int) {
	profile := engine.SYS1
	profile.Vectorized = true
	profile.Parallelism = degree
	e := getEngine(b, profile, engine.ModeIterative)
	runQuery(b, e, "select custkey, count(*), sum(totalprice), max(totalprice) from orders group by custkey")
}

func BenchmarkParallelGroupBy_Serial(b *testing.B)    { benchParallelGroupBy(b, 0) }
func BenchmarkParallelGroupBy_Parallel4(b *testing.B) { benchParallelGroupBy(b, 4) }
