// Tablefunc: a table-valued UDF with an insert-only cursor loop (the
// paper's Example 7 shape, Section VII-B). The rewriter algebraizes the
// loop into a selection + projection over the cursor query, so the function
// reference in FROM becomes a plain relational subexpression that joins
// set-oriented with the rest of the query.
//
//	go run ./examples/tablefunc
package main

import (
	"fmt"
	"log"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/sqlgen"
)

func main() {
	cfg := bench.SmallConfig()
	e, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Register an extra table-valued UDF on top of the standard workload.
	err = e.ExecScript(`
create function bigorders(minprice float) returns table tt (ckey int, price float) as
begin
  declare c cursor for select custkey, totalprice from orders;
  open c;
  fetch next from c into @ck, @tp;
  while @@FETCH_STATUS = 0
  begin
    if (@tp > minprice)
      insert into tt values (@ck, @tp * 1.0);
    fetch next from c into @ck, @tp;
  end
  close c; deallocate c;
  return tt;
end`)
	if err != nil {
		log.Fatal(err)
	}

	query := `select c.name, b.price from bigorders(195000) b
	          join customer c on c.custkey = b.ckey order by b.price desc`

	res, err := e.RewriteSQL(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== decorrelated query (table function expanded) ==")
	sql, err := sqlgen.Generate(res.Rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql)
	fmt.Println()

	r, err := e.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== top big orders (%d rows, rewritten=%v) ==\n", len(r.Rows), r.Rewritten)
	fmt.Print(r.Format())
}
