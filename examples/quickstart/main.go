// Quickstart: the paper's Example 1 end to end.
//
// It defines the service_level UDF, loads a small TPC-H subset, shows the
// decorrelated SQL the rewrite pipeline produces (the paper's Example 2),
// and runs the query in both execution modes, comparing results and the
// number of UDF invocations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/sqlgen"
)

func main() {
	cfg := bench.SmallConfig()

	iterative, err := bench.NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rewrite, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, cfg)
	if err != nil {
		log.Fatal(err)
	}

	query := "select custkey, service_level(custkey) from customer where custkey <= 8"

	// 1. Show what the rewriter does (Example 1 -> Example 2).
	res, err := rewrite.RewriteSQL(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== decorrelated form ==")
	sql, err := sqlgen.Generate(res.Rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql)
	fmt.Println()

	// 2. Execute both ways.
	r1, err := iterative.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := rewrite.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== iterative execution ==")
	fmt.Print(r1.Format())
	fmt.Printf("UDF invocations: %d, embedded queries: %d\n\n",
		r1.Counters.UDFCalls, r1.Counters.QueryExecs)

	fmt.Println("== decorrelated execution ==")
	fmt.Print(r2.Format())
	fmt.Printf("UDF invocations: %d (set-oriented plan)\n", r2.Counters.UDFCalls)
}
