// Discount: the paper's Experiment 1 workload (Example 8) as a runnable
// scenario — a straight-line UDF issuing two scalar queries per invocation,
// swept over increasing invocation counts to show where set-oriented
// execution starts to win.
//
//	go run ./examples/discount
package main

import (
	"fmt"
	"log"
	"time"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
)

func main() {
	cfg := bench.Config{
		Customers:         5000,
		OrdersPerCustomer: 8,
		Parts:             1000,
		LineitemsPerPart:  2,
		Categories:        100,
		Seed:              1,
	}
	iterative, err := bench.NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rewrite, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discount(totalprice, custkey): per-order category discount")
	fmt.Printf("%10s %14s %14s %14s\n", "orders", "iterative", "rewritten", "UDF calls")
	for _, n := range []int{100, 1000, 5000, 20000} {
		q := fmt.Sprintf("select top %d orderkey, discount(totalprice, custkey) from orders", n)

		t0 := time.Now()
		r1, err := iterative.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		d1 := time.Since(t0)

		t1 := time.Now()
		r2, err := rewrite.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		d2 := time.Since(t1)

		if len(r1.Rows) != len(r2.Rows) {
			log.Fatalf("result mismatch: %d vs %d rows", len(r1.Rows), len(r2.Rows))
		}
		fmt.Printf("%10d %14s %14s %14d\n", n,
			d1.Round(time.Microsecond), d2.Round(time.Microsecond), r1.Counters.UDFCalls)
	}

	fmt.Println("\nplan for the rewritten query:")
	explain, err := rewrite.Explain("select top 100 orderkey, discount(totalprice, custkey) from orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explain)
}
