// Cursorloop: the paper's Example 5 — a UDF with a cursor loop and a cyclic
// data dependence (total_loss accumulates across iterations). The rewriter
// synthesizes an auxiliary user-defined aggregate (Example 6) and the query
// decorrelates into a grouped outer join (Figure 8).
//
//	go run ./examples/cursorloop
package main

import (
	"fmt"
	"log"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/sqlgen"
)

func main() {
	cfg := bench.SmallConfig()
	e, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, cfg)
	if err != nil {
		log.Fatal(err)
	}

	query := "select partkey, totalloss(partkey) from partsupp where partkey <= 12"

	res, err := e.RewriteSQL(query)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Decorrelated {
		log.Fatal("expected full decorrelation")
	}

	fmt.Println("== auxiliary aggregate synthesized from the loop body ==")
	for _, agg := range res.NewAggs {
		fmt.Println(agg.SQL())
	}

	fmt.Println("== decorrelated query ==")
	sql, err := sqlgen.Generate(res.Rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql)
	fmt.Println()

	// Execute both ways and compare.
	iter, err := bench.NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		log.Fatal(err)
	}
	r1, err := iter.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := e.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== iterative ==")
	fmt.Print(r1.Format())
	fmt.Println("== decorrelated ==")
	fmt.Print(r2.Format())
}
