module udfdecorr

go 1.22
